// Tests for the hemodynamic observables (stress/WSS, flow rate, pressure)
// and the stenosis/aneurysm pathology geometries.
#include <gtest/gtest.h>

#include <cmath>

#include "geometry/generators.hpp"
#include "lbm/mesh.hpp"
#include "lbm/observables.hpp"
#include "lbm/solver.hpp"

namespace hemo::lbm {
namespace {

TEST(Stress, VanishesAtEquilibriumRest) {
  const auto geo = geometry::make_cylinder({.radius = 4, .length = 12});
  const FluidMesh mesh = FluidMesh::build(geo.grid);
  SolverParams params;
  Solver<double> solver(mesh, params, {});  // no inlets: stays at rest
  solver.run(4);
  for (index_t p = 0; p < mesh.num_points(); p += 17) {
    const auto sigma = deviatoric_stress(solver, p);
    for (real_t s : sigma) EXPECT_NEAR(s, 0.0, 1e-13);
  }
}

TEST(Stress, ShearGrowsLinearlyWithRadiusInPoiseuilleFlow) {
  // Force-driven Poiseuille: the shear stress magnitude is F r / 2 — zero
  // on the axis, maximal at the wall. This validates both the stress
  // computation and its link to wall shear stress.
  const index_t radius = 6;
  const auto geo = geometry::make_periodic_cylinder(
      {.radius = radius, .length = 10});
  MeshOptions options;
  options.periodic_z = true;
  const FluidMesh mesh = FluidMesh::build(geo.grid, options);
  SolverParams params;
  params.tau = 0.9;
  const real_t force = 1e-5;
  params.body_force = {0.0, 0.0, force};
  Solver<double> solver(mesh, params, {});
  solver.run(3000);

  const real_t c = static_cast<real_t>(geo.grid.nx() - 1) / 2.0;
  real_t worst_rel = 0.0;
  index_t checked = 0;
  for (index_t p = 0; p < mesh.num_points(); ++p) {
    const auto& v = mesh.voxel(p);
    if (v.z != 4) continue;
    const real_t dx = static_cast<real_t>(v.x) - c;
    const real_t dy = static_cast<real_t>(v.y) - c;
    const real_t r = std::sqrt(dx * dx + dy * dy);
    if (r < 2.0 || r > static_cast<real_t>(radius) - 1.0) continue;
    const real_t expected = force * r / 2.0;
    const real_t actual =
        axial_shear_magnitude(deviatoric_stress(solver, p));
    worst_rel = std::max(worst_rel,
                         std::abs(actual - expected) / expected);
    ++checked;
  }
  EXPECT_GT(checked, 20);
  EXPECT_LT(worst_rel, 0.15);
}

TEST(FlowRate, ConservedAlongTheVessel) {
  const auto geo = geometry::make_cylinder({.radius = 5, .length = 30});
  const FluidMesh mesh = FluidMesh::build(geo.grid);
  SolverParams params;
  Solver<double> solver(mesh, params, std::span(geo.inlets));
  solver.run(2000);
  const real_t q10 = flow_rate(solver, 2, 10);
  const real_t q15 = flow_rate(solver, 2, 15);
  const real_t q20 = flow_rate(solver, 2, 20);
  EXPECT_GT(q10, 0.0);
  EXPECT_NEAR(q15, q10, q10 * 0.01);
  EXPECT_NEAR(q20, q10, q10 * 0.01);
}

TEST(Pressure, DropsDownstreamDrivingTheFlow) {
  const auto geo = geometry::make_cylinder({.radius = 5, .length = 30});
  const FluidMesh mesh = FluidMesh::build(geo.grid);
  SolverParams params;
  Solver<double> solver(mesh, params, std::span(geo.inlets));
  solver.run(2000);
  const real_t p_up = mean_gauge_pressure(solver, 2, 4);
  const real_t p_down = mean_gauge_pressure(solver, 2, 26);
  EXPECT_GT(p_up, p_down);  // pressure gradient drives the flow
}

TEST(Stenosis, GeometryNarrowsAtThroat) {
  const auto geo = geometry::make_stenosis(
      {.radius = 8, .length = 60, .severity = 0.5});
  index_t healthy = 0, throat = 0;
  const index_t zc = geo.grid.nz() / 2;
  for (index_t y = 0; y < geo.grid.ny(); ++y) {
    for (index_t x = 0; x < geo.grid.nx(); ++x) {
      if (geo.grid.is_fluid(x, y, 4)) ++healthy;
      if (geo.grid.is_fluid(x, y, zc)) ++throat;
    }
  }
  // 50 % radius reduction => ~75 % area reduction.
  EXPECT_LT(static_cast<real_t>(throat),
            0.4 * static_cast<real_t>(healthy));
  EXPECT_GT(throat, 0);
}

TEST(Stenosis, FlowAcceleratesAndWssPeaksAtThroat) {
  const auto geo = geometry::make_stenosis(
      {.radius = 7, .length = 48, .severity = 0.45});
  const FluidMesh mesh = FluidMesh::build(geo.grid);
  SolverParams params;
  Solver<double> solver(mesh, params, std::span(geo.inlets));
  solver.run(2500);

  const index_t zc = geo.grid.nz() / 2;
  // Peak axial velocity by plane.
  auto peak_speed = [&](index_t plane) {
    real_t peak = 0.0;
    for (index_t p = 0; p < mesh.num_points(); ++p) {
      if (mesh.voxel(p).z != plane) continue;
      peak = std::max(peak, solver.moments_at(p).uz);
    }
    return peak;
  };
  // Wall shear by plane (max over wall points).
  auto peak_wss = [&](index_t plane) {
    real_t peak = 0.0;
    for (index_t p = 0; p < mesh.num_points(); ++p) {
      if (mesh.voxel(p).z != plane) continue;
      if (mesh.type(p) != PointType::kWall) continue;
      peak = std::max(peak,
                      axial_shear_magnitude(deviatoric_stress(solver, p)));
    }
    return peak;
  };
  EXPECT_GT(peak_speed(zc), 1.8 * peak_speed(6));
  EXPECT_GT(peak_wss(zc), 2.0 * peak_wss(6));
  // Mass still conserved through the constriction.
  EXPECT_NEAR(flow_rate(solver, 2, zc), flow_rate(solver, 2, 6),
              std::abs(flow_rate(solver, 2, 6)) * 0.02);
}

TEST(Aneurysm, FlowDeceleratesAndWssDropsInTheSac) {
  const auto geo = geometry::make_aneurysm(
      {.radius = 6, .length = 48, .dilation = 0.8});
  const FluidMesh mesh = FluidMesh::build(geo.grid);
  SolverParams params;
  Solver<double> solver(mesh, params, std::span(geo.inlets));
  solver.run(2500);

  const index_t zc = geo.grid.nz() / 2;
  auto peak_speed = [&](index_t plane) {
    real_t peak = 0.0;
    for (index_t p = 0; p < mesh.num_points(); ++p) {
      if (mesh.voxel(p).z != plane) continue;
      peak = std::max(peak, solver.moments_at(p).uz);
    }
    return peak;
  };
  auto peak_wss = [&](index_t plane) {
    real_t peak = 0.0;
    for (index_t p = 0; p < mesh.num_points(); ++p) {
      if (mesh.voxel(p).z != plane) continue;
      if (mesh.type(p) != PointType::kWall) continue;
      peak = std::max(peak,
                      axial_shear_magnitude(deviatoric_stress(solver, p)));
    }
    return peak;
  };
  EXPECT_LT(peak_speed(zc), 0.75 * peak_speed(6));
  EXPECT_LT(peak_wss(zc), 0.6 * peak_wss(6));
}

TEST(PathologyGeometries, RejectDegenerateParameters) {
  EXPECT_THROW(geometry::make_stenosis({.severity = 0.95}),
               PreconditionError);
  EXPECT_THROW(geometry::make_aneurysm({.dilation = 2.5}),
               PreconditionError);
}

}  // namespace
}  // namespace hemo::lbm
