// Tests for the annotated synchronization layer (src/util/sync.hpp):
// Mutex lock/unlock and try_lock on both paths, MutexLock RAII exclusion
// under real contention, and CondVar wakeup semantics (single handoff and
// notify_all broadcast). The same file doubles as GCC build coverage for
// the annotation macros — they expand to nothing there, and everything
// must still compile and pass. Under Clang the whole file additionally
// goes through -Wthread-safety, so the guarded members below are analysed
// for real.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/sync.hpp"

namespace hemo {
namespace {

TEST(MutexTest, LockUnlockRoundTrip) {
  Mutex mutex;
  mutex.lock();
  mutex.unlock();
  mutex.lock();
  mutex.unlock();
}

TEST(MutexTest, TryLockSucceedsWhenFree) {
  Mutex mutex;
  ASSERT_TRUE(mutex.try_lock());
  mutex.unlock();
  // Released: a second attempt must succeed again.
  ASSERT_TRUE(mutex.try_lock());
  mutex.unlock();
}

TEST(MutexTest, TryLockFailsWhileHeld) {
  Mutex mutex;
  mutex.lock();
  bool contended_acquire = true;
  // std::mutex::try_lock from the owning thread is UB, so probe from a
  // second thread while this one holds the lock.
  std::thread prober([&] {
    contended_acquire = mutex.try_lock();
    if (contended_acquire) mutex.unlock();
  });
  prober.join();
  mutex.unlock();
  EXPECT_FALSE(contended_acquire);
}

/// A counter whose annotations mirror production use: the total is
/// GUARDED_BY the mutex and only touched under a MutexLock.
class GuardedCounter {
 public:
  void bump() HEMO_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    ++total_;
  }

  [[nodiscard]] int total() HEMO_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    return total_;
  }

 private:
  Mutex mutex_;
  int total_ HEMO_GUARDED_BY(mutex_) = 0;
};

TEST(MutexLockTest, ScopedExclusionUnderContention) {
  constexpr int kThreads = 8;
  constexpr int kIncrements = 1000;
  GuardedCounter counter;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) counter.bump();
    });
  }
  for (auto& thread : threads) thread.join();
  // Any lost update (a data race MutexLock failed to exclude) breaks the
  // exact total.
  EXPECT_EQ(counter.total(), kThreads * kIncrements);
}

/// Single-slot mailbox exercising CondVar in both directions: the consumer
/// waits for `full_`, the producer waits for the slot to drain.
class HandoffSlot {
 public:
  void put(int value) HEMO_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    while (full_) cv_.wait(mutex_);
    value_ = value;
    full_ = true;
    cv_.notify_all();
  }

  [[nodiscard]] int take() HEMO_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    while (!full_) cv_.wait(mutex_);
    full_ = false;
    cv_.notify_all();
    return value_;
  }

 private:
  Mutex mutex_;
  CondVar cv_;
  bool full_ HEMO_GUARDED_BY(mutex_) = false;
  int value_ HEMO_GUARDED_BY(mutex_) = 0;
};

TEST(CondVarTest, ProducerConsumerHandoff) {
  constexpr int kMessages = 64;
  HandoffSlot slot;
  std::vector<int> received;
  received.reserve(kMessages);
  std::thread consumer([&] {
    for (int i = 0; i < kMessages; ++i) received.push_back(slot.take());
  });
  for (int i = 0; i < kMessages; ++i) slot.put(i);
  consumer.join();
  ASSERT_EQ(received.size(), static_cast<std::size_t>(kMessages));
  for (int i = 0; i < kMessages; ++i) EXPECT_EQ(received[i], i);
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  constexpr int kWaiters = 4;
  Mutex mutex;
  CondVar cv;
  bool released = false;
  int awake = 0;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int t = 0; t < kWaiters; ++t) {
    waiters.emplace_back([&] {
      const MutexLock lock(mutex);
      while (!released) cv.wait(mutex);
      ++awake;
    });
  }
  {
    const MutexLock lock(mutex);
    released = true;
    cv.notify_all();
  }
  for (auto& waiter : waiters) waiter.join();
  const MutexLock lock(mutex);
  EXPECT_EQ(awake, kWaiters);
}

}  // namespace
}  // namespace hemo
