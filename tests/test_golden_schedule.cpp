// Golden-file regression test for the campaign CSV report.
//
// Replicates `hemocloud_cli schedule cylinder 6 20000 42 --csv` natively
// and compares the report byte-for-byte against the checked-in golden file.
// The campaign engine's determinism contract (same seed => byte-identical
// report for any worker count) is what makes an exact-match golden viable:
// any drift here means either an intentional model/scheduler change (rerun
// with HEMO_UPDATE_GOLDEN=1 and review the diff) or a broken determinism
// guarantee.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "sched/executor.hpp"
#include "sched/report.hpp"
#include "sched/scheduler.hpp"

#ifndef HEMO_GOLDEN_DIR
#error "HEMO_GOLDEN_DIR must point at tests/golden"
#endif

namespace hemo::sched {
namespace {

std::string golden_path() {
  return std::string(HEMO_GOLDEN_DIR) + "/schedule_cylinder_6x20000_seed42.csv";
}

/// Mirrors cmd_schedule in examples/hemocloud_cli.cpp: same catalog filter,
/// objective, core counts, calibration ladder, job mix, and engine seed.
std::string run_reference_campaign() {
  std::vector<const cluster::InstanceProfile*> profiles;
  for (const auto& p : cluster::default_catalog()) {
    if (!p.gpu && p.abbrev != "CSP-2 Hyp.") profiles.push_back(&p);
  }
  SchedulerConfig config;
  config.objective = core::Objective::kMinCost;
  config.core_counts = {16, 36, 72, 144};
  CampaignScheduler scheduler(std::move(profiles), config);
  const std::vector<index_t> cal_counts = {2, 4, 8, 16, 32};
  scheduler.register_workload(
      "cylinder", geometry::make_cylinder({.radius = 10, .length = 80}),
      cal_counts);

  std::vector<CampaignJobSpec> jobs;
  for (index_t i = 0; i < 6; ++i) {
    CampaignJobSpec spec;
    spec.id = i + 1;
    spec.geometry = "cylinder";
    spec.timesteps = 20000;
    spec.allow_spot = (i % 3 == 1);
    jobs.push_back(spec);
  }

  EngineConfig engine_config;
  engine_config.seed = 42;
  CampaignEngine engine(scheduler, engine_config);
  return engine.run(std::move(jobs)).to_csv();
}

TEST(GoldenSchedule, CsvReportMatchesGoldenFile) {
  const std::string csv = run_reference_campaign();

  if (std::getenv("HEMO_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path(), std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path();
    out << csv;
    GTEST_SKIP() << "golden file regenerated at " << golden_path();
  }

  std::ifstream in(golden_path(), std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path()
                         << " (regenerate with HEMO_UPDATE_GOLDEN=1)";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(csv, expected.str())
      << "campaign CSV drifted from the golden file; if the change is "
         "intentional rerun with HEMO_UPDATE_GOLDEN=1 and review the diff";
}

}  // namespace
}  // namespace hemo::sched
