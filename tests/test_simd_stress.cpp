// Race-detector stress for the threaded segmented sweep.
//
// The step kernels claim race freedom from structural invariants (disjoint
// writers in AB / AA-even, reader == writer per location in AA-odd, no
// barrier between the bulk and boundary passes) rather than from locks.
// This test drives many steps at a deliberately oversubscribed thread
// count under both propagation patterns so the CI thread-sanitizer job
// (HEMO_SANITIZE=thread, `ctest -L tsan`) can observe any pair of
// conflicting unsynchronized accesses — and asserts the results stay
// bit-identical to the single-thread run, which holds with or without
// instrumentation.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "geometry/generators.hpp"
#include "lbm/mesh.hpp"
#include "lbm/solver.hpp"

namespace hemo::lbm {
namespace {

template <typename T>
std::vector<T> run_threaded(const FluidMesh& mesh,
                            const geometry::Geometry& geo, Propagation prop,
                            index_t threads, index_t steps) {
  SolverParams params;
  params.kernel.layout = Layout::kSoA;
  params.kernel.propagation = prop;
  params.kernel.path = KernelPath::kSegmented;
  params.num_threads = threads;
  Solver<T> solver(mesh, params, std::span(geo.inlets));
  solver.run(steps);
  return solver.export_state();
}

TEST(SimdStress, ThreadedSweepIsRaceFreeAndBitStable) {
  const auto geo = geometry::make_cylinder({.radius = 5, .length = 24});
  const FluidMesh mesh = FluidMesh::build(geo.grid);
  for (const Propagation prop : {Propagation::kAB, Propagation::kAA}) {
    const std::vector<float> serial =
        run_threaded<float>(mesh, geo, prop, 1, 40);
    const std::vector<float> threaded =
        run_threaded<float>(mesh, geo, prop, 8, 40);
    ASSERT_EQ(serial.size(), threaded.size());
    std::size_t mismatches = 0;
    for (std::size_t k = 0; k < serial.size(); ++k) {
      if (std::memcmp(&serial[k], &threaded[k], sizeof(float)) != 0) {
        ++mismatches;
      }
    }
    EXPECT_EQ(mismatches, 0u)
        << to_string(prop) << " threaded sweep diverged from serial";
  }
}

}  // namespace
}  // namespace hemo::lbm
