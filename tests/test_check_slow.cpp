// Slow-tier validation: the full differential-oracle suite and the
// mutation self-test, exactly as `hemocloud_cli check` / `mutate` run them.
// These take tens of seconds (LBM calibration + oracle grids), so they are
// labelled "slow" in ctest and excluded from the tier-1 wall (`ctest -L
// tier1`); CI runs them in a dedicated step and under sanitizers.
#include <gtest/gtest.h>

#include "check/mutation.hpp"
#include "check/oracles.hpp"

namespace hemo::check {
namespace {

/// One calibrated context shared across the suite: building it costs more
/// than any single oracle run, and every consumer restores what it mutates.
OracleContext& shared_context() {
  static OracleContext ctx = OracleContext::make_default();
  return ctx;
}

PropertyConfig slow_config() {
  PropertyConfig config;
  config.seed = 42;
  config.cases = 40;
  return config;
}

TEST(CheckSlow, AllOraclesPassAtFullCaseCount) {
  const auto results = run_all_oracles(shared_context(), slow_config());
  ASSERT_GE(results.size(), 5u);
  for (const PropertyResult& r : results) {
    EXPECT_TRUE(r.passed) << r.summary();
    EXPECT_GE(r.cases_run, 1);
  }
}

TEST(CheckSlow, OracleSuiteReplaysByteIdentically) {
  const auto a = run_all_oracles(shared_context(), slow_config());
  const auto b = run_all_oracles(shared_context(), slow_config());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].summary(), b[i].summary())
        << "oracle " << a[i].name << " is not replay-stable";
  }
}

// The teeth proof: every seeded coefficient perturbation must be caught by
// the oracle its error routes to (a2 feeds both predictors through the
// bandwidth law, so only the measurement oracle sees it; the fitted comm
// and workload laws feed only the generalized model, so the agreement
// oracle sees those). A mutation that survives here means the band is too
// wide or the coefficient is dead weight.
TEST(CheckSlow, MutationSelfTestDetectsEveryPerturbation) {
  const MutationReport report =
      run_mutation_suite(shared_context(), slow_config());
  EXPECT_TRUE(report.baseline_passed) << report.summary();
  ASSERT_EQ(report.outcomes.size(), 6u);
  for (const MutationOutcome& o : report.outcomes) {
    EXPECT_TRUE(o.detected) << o.coefficient << " escaped oracle " << o.oracle
                            << ": " << o.detail;
  }
  EXPECT_TRUE(report.restored_passed)
      << "context not restored after mutations: " << report.summary();
  EXPECT_TRUE(report.all_detected());
}

}  // namespace
}  // namespace hemo::check
