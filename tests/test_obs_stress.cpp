// Concurrency stress for the metrics registry (run under TSan via
// `ctest -L tsan`): many threads hammering the same histogram series and
// the same counters must neither race nor lose updates, and flipping the
// enabled flag mid-storm must stay data-race-free (it is the lock-free
// fast path every instrumented layer takes).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hemo::obs {
namespace {

TEST(ObsStress, ConcurrentHistogramObservationsAreLossless) {
  MetricsRegistry registry;
  registry.enable(true);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Spread observations across buckets; the shared-series path is
        // the contended one.
        registry.observe("storm_seconds",
                         static_cast<real_t>((t * kPerThread + i) % 97 + 1));
        registry.add("storm_total");
        registry.add("storm_by_thread_total", 1.0,
                     {{"thread", std::to_string(t)}});
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  constexpr auto kExpected =
      static_cast<std::uint64_t>(kThreads) * kPerThread;
  bool saw_histogram = false;
  real_t counter_total = 0.0;
  for (const MetricSnapshot& snap : registry.snapshot()) {
    if (snap.name == "storm_seconds") {
      saw_histogram = true;
      EXPECT_EQ(snap.histogram.count, kExpected);
      EXPECT_GE(snap.histogram.min, 1.0);
      EXPECT_LE(snap.histogram.max, 97.0);
      std::uint64_t bucketed = 0;
      for (const std::uint64_t b : snap.histogram.buckets) bucketed += b;
      EXPECT_EQ(bucketed, kExpected);
    }
    if (snap.name == "storm_total") {
      EXPECT_DOUBLE_EQ(snap.value, static_cast<real_t>(kExpected));
    }
    if (snap.name == "storm_by_thread_total") {
      EXPECT_DOUBLE_EQ(snap.value, static_cast<real_t>(kPerThread));
      counter_total += snap.value;
    }
  }
  EXPECT_TRUE(saw_histogram);
  EXPECT_DOUBLE_EQ(counter_total,
                   static_cast<real_t>(kThreads) * kPerThread);
}

TEST(ObsStress, EnableToggleDuringStormIsRaceFree) {
  MetricsRegistry registry;
  std::atomic<bool> stop{false};

  std::thread toggler([&registry, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      registry.enable(true);
      registry.enable(false);
    }
    registry.enable(true);
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&registry] {
      for (int i = 0; i < 20000; ++i) {
        registry.add("toggle_total");
        registry.set("toggle_gauge", static_cast<real_t>(i));
      }
    });
  }
  for (std::thread& thread : writers) thread.join();
  stop.store(true, std::memory_order_relaxed);
  toggler.join();

  // With the flag flapping we cannot pin the exact count — only that the
  // registry stays coherent (snapshot under the same lock as the writes).
  for (const MetricSnapshot& snap : registry.snapshot()) {
    if (snap.name == "toggle_total") {
      EXPECT_GE(snap.value, 0.0);
    }
  }
}

TEST(ObsStress, ConcurrentWallSpansRecordOnePerThread) {
  TraceRecorder recorder;
  recorder.enable(true);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      const auto span = recorder.wall_span(
          "worker", "stress", {{"thread", std::to_string(t)}});
    });
  }
  for (std::thread& thread : threads) thread.join();

  // All wall spans recorded; none on the virtual track.
  EXPECT_EQ(recorder.virtual_event_count(), 0u);
  const std::string json = recorder.to_chrome_json();
  std::size_t spans = 0;
  for (std::size_t pos = json.find("\"name\":\"worker\"");
       pos != std::string::npos;
       pos = json.find("\"name\":\"worker\"", pos + 1)) {
    ++spans;
  }
  EXPECT_EQ(spans, static_cast<std::size_t>(kThreads));
}

}  // namespace
}  // namespace hemo::obs
