// Tests for the cloud-side extensions: GPU offload (the t_CPU-GPU term of
// the paper's Eq. 2), the add-and-check term refinement loop (§IV), spot
// pricing, and hyperthreaded planning.
#include <gtest/gtest.h>

#include <cmath>

#include "cluster/hardware.hpp"
#include "core/calibration.hpp"
#include "core/dashboard.hpp"
#include "core/models.hpp"
#include "core/refinement.hpp"
#include "harvey/simulation.hpp"

namespace hemo {
namespace {

harvey::Simulation make_cyl_sim() {
  harvey::SimulationOptions opts;
  opts.solver.tau = 0.8;
  return harvey::Simulation(
      geometry::make_cylinder({.radius = 10, .length = 80}), opts);
}

TEST(GpuSystem, CatalogHasGpuVariantWithSaneNumbers) {
  const auto& p = cluster::instance_by_abbrev("CSP-2 GPU");
  ASSERT_TRUE(p.gpu.has_value());
  EXPECT_EQ(p.gpu->gpus_per_node, 4);
  EXPECT_GT(p.gpu->memory_bandwidth.value(),
            p.memory.node_bandwidth_mbs(36.0).value());
  cluster::GpuSystem gpu(p);
  EXPECT_LT(gpu.effective_bandwidth().value(),
            p.gpu->memory_bandwidth.value());
  // CPU-only instances reject GpuSystem.
  EXPECT_THROW(cluster::GpuSystem(cluster::instance_by_abbrev("TRC")),
               PreconditionError);
}

TEST(GpuSystem, TransferTimeMonotoneAndSuperlinearLatency) {
  cluster::GpuSystem gpu(cluster::instance_by_abbrev("CSP-2 GPU"));
  real_t prev = gpu.transfer_time(units::Bytes(0.0)).value();
  for (real_t bytes = 1024.0; bytes <= 1 << 22; bytes *= 4.0) {
    const real_t t = gpu.transfer_time(units::Bytes(bytes)).value();
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(GpuExecution, GpuBeatsCpuOnSameInstanceForBigDomains) {
  // One GPU's effective bandwidth (~630 GB/s) dwarfs a 36-core node's
  // ~104 GB/s; within-node GPU runs must win despite PCIe staging.
  auto sim = make_cyl_sim();
  const auto& gpu_profile = cluster::instance_by_abbrev("CSP-2 GPU");
  const auto cpu = sim.measure(gpu_profile, 36, 200);
  const auto gpu = sim.measure_gpu(gpu_profile, 4, 200);
  EXPECT_GT(gpu.mflups.value(), cpu.mflups.value() * 2.0);
  EXPECT_GT(gpu.critical.xfer_s.value(), 0.0);  // PCIe staging is accounted
  EXPECT_DOUBLE_EQ(cpu.critical.xfer_s.value(), 0.0);
}

TEST(GpuExecution, MeasureGpuRejectsCpuOnlyInstances) {
  auto sim = make_cyl_sim();
  EXPECT_THROW(
      (void)sim.measure_gpu(cluster::instance_by_abbrev("CSP-2"), 4, 10),
      PreconditionError);
}

TEST(GpuModel, CalibrationCoversDeviceAndPcie) {
  const auto cal =
      core::calibrate_instance(cluster::instance_by_abbrev("CSP-2 GPU"));
  ASSERT_TRUE(cal.gpu_bandwidth.has_value());
  ASSERT_TRUE(cal.gpu_pcie.has_value());
  // Device STREAM lands near the published HBM figure (not the hidden
  // kernel-efficiency-derated one).
  EXPECT_NEAR(cal.gpu_bandwidth->value(), 900000.0, 900000.0 * 0.05);
  EXPECT_GT(cal.gpu_pcie->bandwidth, 8000.0);
  // CPU-only calibration has no GPU fields.
  const auto cpu_cal =
      core::calibrate_instance(cluster::instance_by_abbrev("CSP-2"));
  EXPECT_FALSE(cpu_cal.gpu_bandwidth.has_value());
}

TEST(GpuModel, DirectModelOverpredictsGpuRunsToo) {
  auto sim = make_cyl_sim();
  const auto& profile = cluster::instance_by_abbrev("CSP-2 GPU");
  const auto cal = core::calibrate_instance(profile);
  const auto& plan = sim.gpu_plan(4, 4);
  const auto pred = core::predict_direct(plan, cal);
  const auto meas = sim.measure_gpu(profile, 4, 200);
  // Kernel efficiency is hidden, but the model is in the right ballpark.
  EXPECT_GT(pred.mflups.value(), meas.mflups.value());
  EXPECT_LT(pred.mflups.value(), meas.mflups.value() * 2.0);
  EXPECT_GT(pred.t_xfer.value(), 0.0);  // Eq. 2's t_CPU-GPU appears
}

TEST(GpuModel, CpuPlanOnGpuCalibrationIgnoresDeviceFields) {
  auto sim = make_cyl_sim();
  const auto& profile = cluster::instance_by_abbrev("CSP-2 GPU");
  const auto cal = core::calibrate_instance(profile);
  const auto pred = core::predict_direct(sim.plan(36, 36), cal);
  EXPECT_DOUBLE_EQ(pred.t_xfer.value(), 0.0);
}

TEST(TermSelector, KeepsUsefulTermDiscardsBogusOne) {
  // Ground truth: measured = predicted + 2us * n_tasks (a real missing
  // per-task cost). A candidate matching that shape is kept; a constant
  // 1 ms term is discarded.
  std::vector<core::RefinementSample> samples;
  for (index_t n : {4, 8, 16, 32, 64}) {
    const real_t base = 1e-3;
    samples.push_back(core::RefinementSample{
        n, base, base + 2e-6 * static_cast<real_t>(n)});
  }
  core::TermSelector selector(samples);
  const real_t initial_error = selector.current_error();

  core::CandidateTerm bogus{
      "constant-overhead",
      [](index_t) { return 1e-3; }};
  const auto bogus_eval = selector.check(bogus);
  EXPECT_FALSE(bogus_eval.keep);
  EXPECT_GT(bogus_eval.with_term_error, bogus_eval.baseline_error);

  core::CandidateTerm good{
      "per-task-sync",
      [](index_t n) { return 2e-6 * static_cast<real_t>(n); }};
  const auto good_eval = selector.check(good);
  EXPECT_TRUE(good_eval.keep);
  EXPECT_LT(good_eval.with_term_error, 1e-9);
  EXPECT_LT(selector.current_error(), initial_error);
  ASSERT_EQ(selector.kept().size(), 1u);
  EXPECT_EQ(selector.kept()[0], "per-task-sync");

  // Refined predictions include the kept term only.
  EXPECT_NEAR(selector.refined_step_s(1e-3, 16), 1e-3 + 32e-6, 1e-12);
}

TEST(TermSelector, MinImprovementThresholdBlocksMarginalTerms) {
  std::vector<core::RefinementSample> samples = {
      {8, 1e-3, 1.001e-3}, {16, 1e-3, 1.002e-3}};
  core::TermSelector selector(samples);
  core::CandidateTerm tiny{"tiny", [](index_t) { return 1.5e-6; }};
  const auto eval = selector.check(tiny, /*min_improvement=*/0.05);
  EXPECT_FALSE(eval.keep);  // improves, but below the threshold
}

TEST(SpotPricing, DiscountsShortJobsButInflatesWallTime) {
  core::DashboardRow row;
  row.instance = "CSP-2";
  row.prediction.mflups = units::Mflups(100.0);
  row.time_to_solution_s = units::Seconds(3600.0);
  row.cost_rate_per_hour = units::DollarsPerHour(10.0);
  row.total_dollars = units::Dollars(10.0);
  row.mflups_per_dollar_hour = units::MflupsPerDollarHour(10.0);

  core::SpotOptions spot;  // 70 % discount, 0.15 preemptions/hour
  const auto priced = core::apply_spot_pricing(row, spot);
  EXPECT_GT(priced.time_to_solution_s.value(),
            row.time_to_solution_s.value());
  EXPECT_LT(priced.total_dollars.value(), row.total_dollars.value() * 0.5);
  EXPECT_GT(priced.mflups_per_dollar_hour.value(),
            row.mflups_per_dollar_hour.value());
}

TEST(SpotPricing, HeavyPreemptionErodesTheDiscount) {
  core::DashboardRow row;
  row.prediction.mflups = units::Mflups(100.0);
  row.time_to_solution_s = units::Seconds(100.0 * 3600.0);  // very long job
  row.cost_rate_per_hour = units::DollarsPerHour(10.0);
  row.total_dollars = units::Dollars(1000.0);

  core::SpotOptions brutal;
  brutal.discount = 0.10;
  brutal.preemptions_per_hour = units::PerHour(6.0);
  brutal.restart_overhead_s = units::Seconds(3000.0);
  brutal.checkpoint_interval_s = units::Seconds(3600.0);
  const auto priced = core::apply_spot_pricing(row, brutal);
  EXPECT_GT(priced.total_dollars.value(), row.total_dollars.value());
}

TEST(Hyperthreading, PlanningOneTaskPerVcpuIsCounterproductive) {
  // The paper's Fig. 5 point: hyperthreads add no bandwidth, so planning
  // 72 tasks/node on CSP-2 Hyp. predicts lower throughput than 36/node on
  // plain CSP-2 at the same 144-core allocation.
  auto sim = make_cyl_sim();
  const auto cal_ht =
      core::calibrate_instance(cluster::instance_by_abbrev("CSP-2 Hyp."));
  const auto cal =
      core::calibrate_instance(cluster::instance_by_abbrev("CSP-2"));
  const auto ht = core::predict_direct(sim.plan(144, 72), cal_ht);
  const auto regular = core::predict_direct(sim.plan(144, 36), cal);
  EXPECT_LT(ht.mflups.value(), regular.mflups.value());
}

}  // namespace
}  // namespace hemo
