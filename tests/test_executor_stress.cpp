// Race-detector stress for the concurrent execution engine (labelled
// `tsan` in ctest; the CI thread-sanitizer job builds with
// HEMO_SANITIZE=thread and runs exactly this suite). Three pressure
// points:
//
//  * WorkerPool's mutex/condvar queue under many producers and workers;
//  * a full campaign under aggressive FaultInjection so the kill/requeue
//    (overrun guard), spot-preemption resume, and corrupted-checkpoint
//    reload paths all run concurrently across attempts;
//  * the determinism contract under those same faults: byte-identical
//    reports for any worker count, i.e. no interleaving-dependent state.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.hpp"
#include "sched/executor.hpp"
#include "sched/guard.hpp"
#include "sched/report.hpp"
#include "sched/scheduler.hpp"

namespace hemo::sched {
namespace {

std::unique_ptr<CampaignScheduler> make_scheduler(SchedulerConfig config) {
  auto scheduler = std::make_unique<CampaignScheduler>(
      std::vector<const cluster::InstanceProfile*>{
          &cluster::instance_by_abbrev("CSP-1"),
          &cluster::instance_by_abbrev("CSP-2 Small")},
      config);
  const std::vector<index_t> cal_counts = {2, 4, 8, 16};
  scheduler->register_workload(
      "cylinder", geometry::make_cylinder({.radius = 10, .length = 80}),
      cal_counts);
  return scheduler;
}

TEST(ExecutorStress, WorkerPoolManyProducersManyWorkers) {
  constexpr index_t kProducers = 4;
  constexpr index_t kTasksPerProducer = 64;
  WorkerPool pool(8);

  std::vector<std::future<AttemptResult>> futures(
      static_cast<std::size_t>(kProducers * kTasksPerProducer));
  std::atomic<int> started{0};
  std::vector<std::thread> producers;
  producers.reserve(static_cast<std::size_t>(kProducers));
  for (index_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      ++started;
      // Spin until every producer is live so submissions genuinely race.
      while (started.load() < kProducers) std::this_thread::yield();
      for (index_t i = 0; i < kTasksPerProducer; ++i) {
        const index_t tag = p * kTasksPerProducer + i;
        futures[static_cast<std::size_t>(tag)] = pool.submit([tag] {
          AttemptResult r;
          r.steps_done = tag;
          r.sim_seconds = units::Seconds(static_cast<real_t>(tag) * 0.5);
          return r;
        });
      }
    });
  }
  for (auto& t : producers) t.join();

  for (index_t tag = 0; tag < kProducers * kTasksPerProducer; ++tag) {
    const AttemptResult r = futures[static_cast<std::size_t>(tag)].get();
    EXPECT_EQ(r.steps_done, tag);
    EXPECT_EQ(r.sim_seconds.value(), static_cast<real_t>(tag) * 0.5);
  }
}

EngineConfig stress_engine_config(index_t n_workers) {
  EngineConfig config;
  config.n_workers = n_workers;
  config.seed = 1234;
  config.max_attempts = 6;
  config.max_preemptions = 12;
  // Aggressive faults: slow enough to trip the 10 % overrun guard on
  // cold-model placements, an interruption storm on spot capacity, and
  // frequent corrupted checkpoint reloads on resume.
  config.faults.slowdown_factor = 1.35;
  config.faults.extra_preemption_probability = 0.20;
  config.faults.checkpoint_corruption_rate = 0.25;
  return config;
}

SchedulerConfig stress_scheduler_config() {
  SchedulerConfig config;
  config.core_counts = {8, 16, 32};
  config.pilot_steps = 0;  // cold model: first attempts overrun and requeue
  config.spot.preemptions_per_hour = units::PerHour(1.0);
  config.spot.checkpoint_interval_s = units::Seconds(300.0);
  return config;
}

std::vector<CampaignJobSpec> stress_jobs() {
  std::vector<CampaignJobSpec> jobs;
  for (index_t i = 0; i < 10; ++i) {
    CampaignJobSpec spec;
    spec.id = i + 1;
    spec.geometry = "cylinder";
    spec.timesteps = 30000 + 8000 * (i % 3);
    spec.allow_spot = (i % 2 == 0);  // half the fleet preemptible
    jobs.push_back(spec);
  }
  return jobs;
}

TEST(ExecutorStress, EngineSurvivesFaultStorm) {
  auto scheduler = make_scheduler(stress_scheduler_config());
  CampaignEngine engine(*scheduler, stress_engine_config(8));
  const CampaignReport report = engine.run(stress_jobs());

  EXPECT_EQ(report.n_jobs, 10);
  EXPECT_EQ(report.n_completed + report.n_failed, report.n_jobs);
  EXPECT_GT(report.n_completed, 0);
  // The storm must actually exercise the concurrent fault paths; these
  // totals are deterministic for the fixed seed, so >0 is stable.
  EXPECT_GT(report.total_overruns, 0);
  EXPECT_GT(report.total_preemptions, 0);
  EXPECT_GT(report.total_requeues, 0);
  EXPECT_GT(report.total_dollars.value(), 0.0);
  EXPECT_GT(report.makespan_s.value(), 0.0);
}

TEST(ExecutorStress, FaultStormReportIsWorkerCountInvariant) {
  std::string baseline;
  for (const index_t n_workers : {1, 3, 8}) {
    auto scheduler = make_scheduler(stress_scheduler_config());
    CampaignEngine engine(*scheduler, stress_engine_config(n_workers));
    const std::string csv = engine.run(stress_jobs()).to_csv();
    if (baseline.empty()) {
      baseline = csv;
    } else {
      EXPECT_EQ(csv, baseline) << "report diverged at " << n_workers
                               << " workers";
    }
  }
}

// Attempt-level incident records: every preemption / corrupted-restore /
// guard-stop that simulate_attempt counts must also appear in
// AttemptResult::events, stamped with a nondecreasing attempt-relative
// virtual offset inside the attempt's occupancy window. (The executor
// relies on this to place trace instants at absolute campaign time.)
TEST(ExecutorStress, AttemptEventsAreOrderedAndMatchCounters) {
  SchedulerConfig sched_config = stress_scheduler_config();
  auto scheduler = make_scheduler(sched_config);

  CampaignJobSpec spec;
  spec.id = 1;
  spec.geometry = "cylinder";
  spec.timesteps = 40000;
  spec.allow_spot = true;
  PlacementRequest request;
  request.spec = &spec;
  request.remaining_steps = spec.timesteps;
  const PlacementDecision decision = scheduler->place(request);
  ASSERT_EQ(decision.kind, PlacementDecision::Kind::kPlaced);

  AttemptContext ctx;
  ctx.plan = &scheduler->plan_for(spec.geometry, decision.placement.instance,
                                  decision.placement.n_tasks);
  ctx.profile = &scheduler->profile_for(decision.placement.instance);
  ctx.placement = decision.placement;
  ctx.placement.spot = true;  // force the preemption machinery on
  ctx.guard.predicted_seconds = decision.placement.predicted_seconds;
  // Very tolerant guard: let the attempt run all its chunks so the spot
  // preemption/corrupted-restore machinery gets exercised end to end.
  ctx.guard.tolerance = 100.0;
  ctx.guard.price_per_hour = decision.placement.cost_rate_per_hour;
  ctx.steps = spec.timesteps;
  ctx.seed = 99;
  ctx.spot = sched_config.spot;
  ctx.max_preemptions = 64;
  ctx.faults.extra_preemption_probability = 0.5;
  ctx.faults.checkpoint_corruption_rate = 0.5;

  const AttemptResult res = simulate_attempt(ctx);
  ASSERT_FALSE(res.events.empty()) << "fault storm produced no events";

  index_t preemptions = 0, corruptions = 0, guard_stops = 0, crashes = 0;
  units::Seconds previous{0.0};
  for (const AttemptEvent& event : res.events) {
    EXPECT_GE(event.at_s.value(), previous.value())
        << "event offsets must be nondecreasing";
    EXPECT_GE(event.at_s.value(), 0.0);
    // Checkpointed progress at an event is bounded by the request; it is
    // NOT monotone — a corrupted restore regresses to the older durable
    // checkpoint by design.
    EXPECT_GE(event.steps_done, 0);
    EXPECT_LE(event.steps_done, ctx.steps);
    previous = event.at_s;
    switch (event.kind) {
      case AttemptEvent::Kind::kPreemption: ++preemptions; break;
      case AttemptEvent::Kind::kCorruptRestore: ++corruptions; break;
      case AttemptEvent::Kind::kGuardStop: ++guard_stops; break;
      case AttemptEvent::Kind::kWorkerCrash: ++crashes; break;
    }
  }
  EXPECT_EQ(preemptions, res.preemptions);
  EXPECT_EQ(corruptions, res.checkpoint_corruptions);
  EXPECT_EQ(guard_stops, res.overrun_aborted ? 1 : 0);
  EXPECT_EQ(crashes, res.worker_crashed ? 1 : 0);
  EXPECT_GT(res.preemptions, 0) << "storm must exercise spot preemption";
}

// The telemetry extension of the determinism contract: the virtual-time
// trace (spans + fault instants) of the fault storm is byte-identical for
// any worker count, and its preemption instants agree with the report.
TEST(ExecutorStress, FaultStormVirtualTraceIsWorkerCountInvariant) {
  obs::TraceRecorder& trace = obs::TraceRecorder::global();
  trace.enable(true);

  const auto count_instants = [](const std::string& json,
                                 const std::string& name) {
    const std::string needle = "{\"name\":\"" + name + "\",";
    std::size_t n = 0;
    for (std::size_t pos = json.find(needle); pos != std::string::npos;
         pos = json.find(needle, pos + 1)) {
      ++n;
    }
    return n;
  };

  std::string baseline;
  for (const index_t n_workers : {1, 8}) {
    trace.reset();
    auto scheduler = make_scheduler(stress_scheduler_config());
    CampaignEngine engine(*scheduler, stress_engine_config(n_workers));
    const CampaignReport report = engine.run(stress_jobs());
    const std::string json = trace.to_chrome_json(/*include_wall=*/false);
    EXPECT_EQ(count_instants(json, "preemption"),
              static_cast<std::size_t>(report.total_preemptions));
    if (baseline.empty()) {
      baseline = json;
    } else {
      EXPECT_EQ(json, baseline)
          << "virtual trace diverged at " << n_workers << " workers";
    }
  }

  trace.enable(false);
  trace.reset();
}

}  // namespace
}  // namespace hemo::sched
