// Tests for the live observability plane (src/obs/): Prometheus text
// exposition conformance (golden bytes, label escaping, cumulative
// histogram rendering), JSONL round-trip through parse_metrics_jsonl,
// glob series selection, the POSIX HTTP telemetry server (routing and a
// real socket round-trip on an ephemeral port), the SLO watchdog (rule
// grammar, evaluation, health transitions and the unhealthy hook), the
// phase-stack sampling profiler, and the fault flight recorder —
// including the acceptance property that the recorder's protocol entries
// mirror the executor's canonical history byte-for-byte.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/instance.hpp"
#include "geometry/generators.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/recorder.hpp"
#include "obs/server.hpp"
#include "obs/watchdog.hpp"
#include "sched/executor.hpp"
#include "sched/history.hpp"
#include "sched/scheduler.hpp"

namespace hemo::obs {
namespace {

/// The profiler and flight recorder are process-global; each test claims
/// them fresh and leaves them disabled so suites stay order-independent.
class ObsLiveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::global().enable(false);
    MetricsRegistry::global().reset();
    PhaseProfiler::global().stop();
    PhaseProfiler::global().enable(false);
    PhaseProfiler::global().reset();
    FlightRecorder::global().enable(false);
    FlightRecorder::global().reset();
    FlightRecorder::global().set_capacity(FlightRecorder::kDefaultCapacity);
  }
  void TearDown() override { SetUp(); }
};

using PromExportTest = ObsLiveTest;
using JsonlRoundTripTest = ObsLiveTest;
using GlobTest = ObsLiveTest;
using ServerTest = ObsLiveTest;
using WatchdogTest = ObsLiveTest;
using ProfilerTest = ObsLiveTest;
using RecorderTest = ObsLiveTest;

// ---------------------------------------------------------------------------
// Prometheus exposition conformance.

TEST_F(PromExportTest, GoldenExpositionBytes) {
  MetricsRegistry registry;
  registry.enable(true);
  registry.add("jobs_total", 3.0);
  registry.set("watchdog_health_state", 1.0);
  const std::array<real_t, 2> edges = {0.1, 1.0};
  const Labels labels = {{"job", "a"}};
  registry.observe("h_seconds", 0.05, labels, edges);
  registry.observe("h_seconds", 0.5, labels, edges);
  registry.observe("h_seconds", 5.0, labels, edges);

  // Families sort by name; buckets are cumulative and closed by +Inf;
  // unknown families get the fallback HELP line, known ones their text.
  const std::string expected =
      "# HELP h_seconds hemocloud metric.\n"
      "# TYPE h_seconds histogram\n"
      "h_seconds_bucket{job=\"a\",le=\"0.1\"} 1\n"
      "h_seconds_bucket{job=\"a\",le=\"1\"} 2\n"
      "h_seconds_bucket{job=\"a\",le=\"+Inf\"} 3\n"
      "h_seconds_sum{job=\"a\"} 5.55\n"
      "h_seconds_count{job=\"a\"} 3\n"
      "# HELP jobs_total hemocloud metric.\n"
      "# TYPE jobs_total counter\n"
      "jobs_total 3\n"
      "# HELP watchdog_health_state SLO health: 0 ok, 1 degraded, 2 "
      "unhealthy.\n"
      "# TYPE watchdog_health_state gauge\n"
      "watchdog_health_state 1\n";
  EXPECT_EQ(to_prometheus(registry), expected);
}

TEST_F(PromExportTest, LabelValuesAreEscaped) {
  MetricsRegistry registry;
  registry.enable(true);
  registry.set("g", 1.0, {{"note", "a\"b\\c\nd"}});
  const std::string text = to_prometheus(registry);
  EXPECT_NE(text.find("g{note=\"a\\\"b\\\\c\\nd\"} 1\n"), std::string::npos)
      << text;
}

TEST_F(PromExportTest, ExpositionIsDeterministic) {
  MetricsRegistry registry;
  registry.enable(true);
  registry.add("b_total", 1.0, {{"x", "2"}});
  registry.add("b_total", 1.0, {{"x", "1"}});
  registry.add("a_total", 4.0);
  EXPECT_EQ(to_prometheus(registry), to_prometheus(registry));
  const std::string text = to_prometheus(registry);
  // a before b; within b, label values in canonical order.
  EXPECT_LT(text.find("a_total 4"), text.find("b_total{x=\"1\"} 1"));
  EXPECT_LT(text.find("b_total{x=\"1\"} 1"), text.find("b_total{x=\"2\"} 1"));
}

TEST_F(PromExportTest, CumulativeBucketsAccumulateAndCloseAtInf) {
  MetricsRegistry registry;
  registry.enable(true);
  const std::array<real_t, 3> edges = {1.0, 2.0, 3.0};
  for (const real_t v : {0.5, 1.5, 1.6, 2.5, 9.0}) {
    registry.observe("h_seconds", v, {}, edges);
  }
  const auto snaps = registry.snapshot();
  ASSERT_EQ(snaps.size(), 1u);
  const auto buckets = cumulative_buckets(snaps[0].histogram);
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0].count, 1u);
  EXPECT_EQ(buckets[1].count, 3u);
  EXPECT_EQ(buckets[2].count, 4u);
  EXPECT_TRUE(buckets[3].inf);
  EXPECT_EQ(buckets[3].count, 5u);
}

// ---------------------------------------------------------------------------
// JSONL round-trip.

TEST_F(JsonlRoundTripTest, SnapshotSurvivesJsonlParse) {
  MetricsRegistry registry;
  registry.enable(true);
  registry.add("jobs_total", 7.0, {{"outcome", "completed"}});
  registry.set("factor", 0.75);
  const std::array<real_t, 2> edges = {0.1, 1.0};
  registry.observe("lat_seconds", 0.05, {{"job", "a"}}, edges);
  registry.observe("lat_seconds", 0.5, {{"job", "a"}}, edges);
  registry.observe("lat_seconds", 3.0, {{"job", "a"}}, edges);

  const auto before = registry.snapshot();
  const auto after = parse_metrics_jsonl(registry.to_jsonl());
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(after[i].name, before[i].name);
    EXPECT_EQ(after[i].labels, before[i].labels);
    EXPECT_EQ(after[i].kind, before[i].kind);
    if (before[i].kind == MetricKind::kHistogram) {
      EXPECT_EQ(after[i].histogram.count, before[i].histogram.count);
      EXPECT_DOUBLE_EQ(after[i].histogram.sum, before[i].histogram.sum);
      EXPECT_EQ(after[i].histogram.buckets, before[i].histogram.buckets);
      EXPECT_EQ(after[i].histogram.edges, before[i].histogram.edges);
    } else {
      EXPECT_DOUBLE_EQ(after[i].value, before[i].value);
    }
  }
  // And the re-parsed snapshot renders the same exposition bytes.
  EXPECT_EQ(to_prometheus(after), to_prometheus(before));
}

TEST_F(JsonlRoundTripTest, NonMetricLinesAreSkipped) {
  const auto snaps = parse_metrics_jsonl(
      "\n# comment\n{\"name\":\"c_total\",\"labels\":{},\"type\":"
      "\"counter\",\"value\":2}\nnot json\n");
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].name, "c_total");
  EXPECT_DOUBLE_EQ(snaps[0].value, 2.0);
}

// ---------------------------------------------------------------------------
// Glob selection.

TEST_F(GlobTest, GlobMatchCases) {
  EXPECT_TRUE(glob_match("campaign_*", "campaign_jobs_total"));
  EXPECT_TRUE(glob_match("*_seconds", "lbm_step_seconds"));
  EXPECT_TRUE(glob_match("a?c", "abc"));
  EXPECT_FALSE(glob_match("a?c", "ac"));
  EXPECT_TRUE(glob_match("*", ""));
  EXPECT_FALSE(glob_match("campaign_*", "runtime_windows_total"));
  EXPECT_TRUE(glob_match("a*b*c", "a_x_b_y_c"));
  EXPECT_FALSE(glob_match("a*b*c", "a_x_c"));
}

TEST_F(GlobTest, SeriesMatchesNameOrFullKey) {
  MetricSnapshot snap;
  snap.name = "campaign_jobs_total";
  snap.labels = {{"outcome", "failed"}};
  // Bare-name pattern ignores labels.
  EXPECT_TRUE(series_matches("campaign_*", snap));
  EXPECT_TRUE(series_matches("campaign_jobs_total", snap));
  // Pattern with '{' matches the full canonical key.
  EXPECT_TRUE(series_matches("campaign_jobs_total{outcome=failed}", snap));
  EXPECT_TRUE(series_matches("campaign_jobs_total{outcome=*}", snap));
  EXPECT_FALSE(
      series_matches("campaign_jobs_total{outcome=completed}", snap));
}

// ---------------------------------------------------------------------------
// HTTP server.

TEST_F(ServerTest, RespondRoutesTargets) {
  MetricsRegistry registry;
  registry.enable(true);
  registry.add("jobs_total", 2.0);
  TelemetryServer server(registry);

  const std::string metrics = server.respond("/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("jobs_total 2"), std::string::npos);

  const std::string json = server.respond("/metrics.json");
  EXPECT_NE(json.find("application/json"), std::string::npos);
  EXPECT_NE(json.find("\"metrics\":["), std::string::npos);

  // Without a watchdog /healthz reports ok.
  const std::string healthz = server.respond("/healthz");
  EXPECT_NE(healthz.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(healthz.find("\"status\":\"ok\""), std::string::npos);

  const std::string status = server.respond("/status");
  EXPECT_NE(status.find("\"http_requests\":"), std::string::npos);

  EXPECT_NE(server.respond("/nope").find("404"), std::string::npos);
}

TEST_F(ServerTest, UnhealthyWatchdogYields503) {
  MetricsRegistry registry;
  registry.enable(true);
  registry.add("campaign_jobs_total", 3.0, {{"outcome", "failed"}});
  registry.add("campaign_attempts_total", 4.0);
  Watchdog watchdog(registry);
  watchdog.set_rules(default_campaign_rules());
  watchdog.evaluate();
  ASSERT_EQ(watchdog.health(), Health::kUnhealthy);

  TelemetryServer server(registry);
  server.set_watchdog(&watchdog);
  const std::string healthz = server.respond("/healthz");
  EXPECT_NE(healthz.find("HTTP/1.1 503"), std::string::npos);
  EXPECT_NE(healthz.find("\"status\":\"unhealthy\""), std::string::npos);
}

/// One blocking HTTP GET against 127.0.0.1:`port`, returning the full
/// response (a ~15-line client is cheaper than a curl dependency).
std::string http_get(std::uint16_t port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request =
      "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buffer[4096];
  for (;;) {
    const auto n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST_F(ServerTest, HttpRoundTripOnEphemeralPort) {
  MetricsRegistry registry;
  registry.enable(true);
  registry.add("jobs_total", 5.0);
  const std::array<real_t, 2> edges = {0.1, 1.0};
  registry.observe("lat_seconds", 0.5, {}, edges);

  TelemetryServer server(registry);  // port 0 = ephemeral
  server.start();
  ASSERT_TRUE(server.running());
  ASSERT_GT(server.port(), 0);

  const std::string metrics = http_get(server.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("jobs_total 5"), std::string::npos);
  EXPECT_NE(metrics.find("lat_seconds_bucket{le=\"+Inf\"} 1"),
            std::string::npos);

  const std::string healthz = http_get(server.port(), "/healthz");
  EXPECT_NE(healthz.find("HTTP/1.1 200 OK"), std::string::npos);

  server.stop();
  EXPECT_FALSE(server.running());
  // Request counter made it into the registry.
  bool saw_requests = false;
  for (const auto& snap : registry.snapshot()) {
    if (snap.name == "telemetry_http_requests_total") saw_requests = true;
  }
  EXPECT_TRUE(saw_requests);
}

// ---------------------------------------------------------------------------
// SLO watchdog.

TEST_F(WatchdogTest, RuleGrammarRoundTrips) {
  const SloRule rule = parse_slo_rule(
      "drift_band: p99(model_drift_*) <= 0.35 => degraded");
  EXPECT_EQ(rule.name, "drift_band");
  EXPECT_EQ(rule.aggregate, "p99");
  EXPECT_EQ(rule.selector, "model_drift_*");
  EXPECT_EQ(rule.op, "<=");
  EXPECT_DOUBLE_EQ(rule.threshold, 0.35);
  EXPECT_EQ(rule.severity, Health::kDegraded);
  EXPECT_EQ(parse_slo_rule(rule.to_string()).to_string(), rule.to_string());

  const SloRule ratio = parse_slo_rule(
      "preemption_rate: ratio(campaign_preemptions_total, "
      "campaign_attempts_total) <= 0.5 => degraded");
  EXPECT_EQ(ratio.aggregate, "ratio");
  EXPECT_EQ(ratio.denominator, "campaign_attempts_total");
  EXPECT_EQ(parse_slo_rule(ratio.to_string()).to_string(),
            ratio.to_string());
}

TEST_F(WatchdogTest, MalformedRulesThrow) {
  EXPECT_THROW((void)parse_slo_rule("no colon here"), NumericError);
  EXPECT_THROW((void)parse_slo_rule("r: bogus(x) <= 1 => degraded"),
               NumericError);
  EXPECT_THROW((void)parse_slo_rule("r: sum(x) <= nope => degraded"),
               NumericError);
  EXPECT_THROW((void)parse_slo_rule("r: sum(x) <= 1 => fine"),
               NumericError);
  EXPECT_THROW((void)parse_slo_rule("r: ratio(x) <= 1 => degraded"),
               NumericError);
}

TEST_F(WatchdogTest, EmptyRegistryIsInapplicableAndOk) {
  MetricsRegistry registry;
  registry.enable(true);
  Watchdog watchdog(registry);
  watchdog.set_rules(default_campaign_rules());
  EXPECT_EQ(watchdog.evaluate(), Health::kOk);
  for (const RuleOutcome& outcome : watchdog.outcomes()) {
    EXPECT_FALSE(outcome.applicable) << outcome.rule.name;
    EXPECT_FALSE(outcome.breached) << outcome.rule.name;
  }
}

TEST_F(WatchdogTest, PreemptionStormDegradesThenRecovers) {
  MetricsRegistry registry;
  registry.enable(true);
  Watchdog watchdog(registry);
  watchdog.set_rules(default_campaign_rules());

  registry.add("campaign_attempts_total", 10.0);
  registry.add("campaign_preemptions_total", 2.0);
  EXPECT_EQ(watchdog.evaluate(), Health::kOk);

  // Preemptions overtake half the attempts: degraded, not unhealthy.
  registry.add("campaign_preemptions_total", 5.0);
  EXPECT_EQ(watchdog.evaluate(), Health::kDegraded);
  bool saw_rule = false;
  for (const RuleOutcome& outcome : watchdog.outcomes()) {
    if (outcome.rule.name != "preemption_rate") continue;
    saw_rule = true;
    EXPECT_TRUE(outcome.applicable);
    EXPECT_TRUE(outcome.breached);
    EXPECT_NEAR(outcome.observed, 0.7, 1e-9);
  }
  EXPECT_TRUE(saw_rule);
  EXPECT_NE(watchdog.health_json().find("\"status\":\"degraded\""),
            std::string::npos);

  // The storm passes (counters keep counting, attempts catch up).
  registry.add("campaign_attempts_total", 20.0);
  EXPECT_EQ(watchdog.evaluate(), Health::kOk);
}

TEST_F(WatchdogTest, UnhealthyHookFiresOnTransitionOnly) {
  MetricsRegistry registry;
  registry.enable(true);
  Watchdog watchdog(registry);
  watchdog.set_rules(default_campaign_rules());
  int fired = 0;
  watchdog.on_unhealthy([&fired] { ++fired; });

  registry.add("campaign_attempts_total", 4.0);
  registry.add("campaign_jobs_total", 2.0, {{"outcome", "failed"}});
  EXPECT_EQ(watchdog.evaluate(), Health::kUnhealthy);
  EXPECT_EQ(fired, 1);
  // Still unhealthy: no re-fire until it recovers and goes red again.
  EXPECT_EQ(watchdog.evaluate(), Health::kUnhealthy);
  EXPECT_EQ(fired, 1);
}

TEST_F(WatchdogTest, EvaluateExportsWatchdogGauges) {
  MetricsRegistry registry;
  registry.enable(true);
  Watchdog watchdog(registry);
  watchdog.set_rules(default_campaign_rules());
  watchdog.evaluate();
  bool saw_state = false, saw_rule_gauge = false;
  for (const auto& snap : registry.snapshot()) {
    if (snap.name == "watchdog_health_state") saw_state = true;
    if (snap.name == "watchdog_rule_breached") saw_rule_gauge = true;
  }
  EXPECT_TRUE(saw_state);
  EXPECT_TRUE(saw_rule_gauge);
}

TEST_F(WatchdogTest, CadenceThreadEvaluatesAndStopsPromptly) {
  MetricsRegistry registry;
  registry.enable(true);
  Watchdog watchdog(registry);
  watchdog.set_rules(default_campaign_rules());
  watchdog.start(0.01);
  // The cadence loop has run at least once within a generous bound.
  bool evaluated = false;
  for (int i = 0; i < 200 && !evaluated; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    evaluated = !watchdog.outcomes().empty();
  }
  EXPECT_TRUE(evaluated);
  const auto t0 = std::chrono::steady_clock::now();
  watchdog.stop();
  const auto stop_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  EXPECT_LT(stop_ms, 2000);
}

// ---------------------------------------------------------------------------
// Sampling profiler.

TEST_F(ProfilerTest, DisabledMarkersAreNoops) {
  PhaseProfiler& profiler = PhaseProfiler::global();
  ASSERT_FALSE(profiler.enabled());
  { const PhaseScope scope("ignored"); }
  EXPECT_EQ(profiler.sample_count(), 0u);
  EXPECT_TRUE(profiler.folded().empty());
}

TEST_F(ProfilerTest, SamplesNestedPhasesIntoFoldedStacks) {
  PhaseProfiler& profiler = PhaseProfiler::global();
  profiler.start(/*hz=*/2000.0);
  set_thread_label("main");
  {
    const PhaseScope outer("outer");
    const auto until =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(60);
    while (std::chrono::steady_clock::now() < until) {
      const PhaseScope inner("inner");
      (void)inner;
    }
  }
  profiler.stop();
  EXPECT_GT(profiler.sample_count(), 10u);
  const std::string folded = profiler.folded();
  EXPECT_NE(folded.find("main;outer"), std::string::npos) << folded;

  MetricsRegistry registry;
  registry.enable(true);
  profiler.export_metrics(registry);
  real_t self_total = 0.0;
  bool saw_period = false;
  for (const auto& snap : registry.snapshot()) {
    if (snap.name == "profile_phase_self_seconds") self_total += snap.value;
    if (snap.name == "profile_sample_period_seconds") saw_period = true;
  }
  EXPECT_TRUE(saw_period);
  // Total attributed self time tracks the sampled wall time.
  const real_t sampled_s =
      static_cast<real_t>(profiler.sample_count()) *
      profiler.period_seconds();
  EXPECT_GT(self_total, 0.0);
  EXPECT_LE(self_total, sampled_s * 1.1 + 0.01);
}

TEST_F(ProfilerTest, OverflowBeyondMaxDepthIsDropped) {
  PhaseProfiler& profiler = PhaseProfiler::global();
  profiler.enable(true);
  int pushed = 0;
  for (int i = 0; i < PhaseProfiler::kMaxDepth + 4; ++i) {
    if (profiler.push_phase("deep")) ++pushed;
  }
  EXPECT_EQ(pushed, PhaseProfiler::kMaxDepth);
  for (int i = 0; i < pushed; ++i) profiler.pop_phase();
}

// ---------------------------------------------------------------------------
// Flight recorder.

TEST_F(RecorderTest, DisabledNoteIsNoop) {
  FlightRecorder& recorder = FlightRecorder::global();
  recorder.note("test", "dropped");
  EXPECT_TRUE(recorder.entries().empty());
}

TEST_F(RecorderTest, RingEvictsOldestAndCountsDrops) {
  FlightRecorder& recorder = FlightRecorder::global();
  recorder.set_capacity(4);
  recorder.enable(true);
  for (int i = 0; i < 6; ++i) {
    recorder.note("test", "entry " + std::to_string(i));
  }
  const auto entries = recorder.entries();
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_EQ(entries.front().text, "entry 2");
  EXPECT_EQ(entries.back().text, "entry 5");
  EXPECT_EQ(recorder.dropped(), 2u);
  const std::string dump = recorder.dump();
  EXPECT_NE(dump.find("# hemocloud flight recorder (dropped=2)"),
            std::string::npos);
  EXPECT_NE(dump.find("entry 5"), std::string::npos);
  EXPECT_EQ(dump.find("entry 1"), std::string::npos);
}

TEST_F(RecorderTest, DumpEscapesNewlinesToOneLinePerEntry) {
  FlightRecorder& recorder = FlightRecorder::global();
  recorder.enable(true);
  recorder.note("test", "line1\nline2");
  const std::string dump = recorder.dump();
  EXPECT_NE(dump.find("line1\\nline2"), std::string::npos);
  // Header + one entry = exactly two lines.
  EXPECT_EQ(std::count(dump.begin(), dump.end(), '\n'), 2);
}

TEST_F(RecorderTest, SnapshotMetricsCapturesSeries) {
  MetricsRegistry registry;
  registry.enable(true);
  registry.add("jobs_total", 2.0);
  FlightRecorder& recorder = FlightRecorder::global();
  recorder.enable(true);
  recorder.snapshot_metrics(registry);
  const auto entries = recorder.entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].kind, "metrics");
  EXPECT_NE(entries[0].text.find("jobs_total"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Acceptance: the recorder's protocol entries mirror the executor's
// canonical history byte-for-byte during a faulted campaign.

TEST_F(RecorderTest, ProtocolEntriesMirrorCanonicalHistory) {
  sched::SchedulerConfig sched_config;
  sched_config.core_counts = {8, 16, 32};
  sched::CampaignScheduler scheduler(
      std::vector<const cluster::InstanceProfile*>{
          &cluster::instance_by_abbrev("CSP-1"),
          &cluster::instance_by_abbrev("CSP-2 Small")},
      sched_config);
  const std::vector<index_t> cal_counts = {2, 4, 8};
  scheduler.register_workload(
      "cylinder", geometry::make_cylinder({.radius = 6, .length = 40}),
      cal_counts);

  std::vector<sched::CampaignJobSpec> jobs;
  for (index_t i = 0; i < 3; ++i) {
    sched::CampaignJobSpec spec;
    spec.id = i + 1;
    spec.geometry = "cylinder";
    spec.timesteps = 20000;
    spec.allow_spot = true;
    jobs.push_back(spec);
  }

  FlightRecorder& recorder = FlightRecorder::global();
  recorder.enable(true);

  sched::ProtocolHistory history;
  sched::EngineConfig config;
  config.n_workers = 2;
  config.seed = 42;
  config.faults.extra_preemption_probability = 0.3;
  config.history = &history;
  sched::CampaignEngine engine(scheduler, config);
  (void)engine.run(std::move(jobs));

  std::string mirrored;
  for (const FlightEntry& entry : recorder.entries()) {
    if (entry.kind != "protocol") continue;
    mirrored += entry.text;
    mirrored += '\n';
  }
  ASSERT_FALSE(mirrored.empty());
  EXPECT_EQ(mirrored, history.canonical());
}

}  // namespace
}  // namespace hemo::obs
