// Unit tests for the fitting substrate: statistics, linear and constrained
// fits, the two-line law (Eq. 8), the nonlinear log-models (Eqs. 11, 15),
// interpolation, and the Nelder-Mead minimizer.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "fit/interp.hpp"
#include "fit/linear.hpp"
#include "fit/log_models.hpp"
#include "fit/minimize.hpp"
#include "fit/stats.hpp"
#include "fit/two_line.hpp"
#include "util/rng.hpp"

namespace hemo::fit {
namespace {

TEST(Stats, MeanAndStddev) {
  const std::vector<real_t> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(stddev(xs), 2.138, 1e-3);
  EXPECT_NEAR(coefficient_of_variation(xs), 2.138 / 5.0, 1e-3);
}

TEST(Stats, SummaryMatchesPieces) {
  const std::vector<real_t> xs = {1.0, 2.0, 3.0, 4.0};
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, mean(xs));
  EXPECT_DOUBLE_EQ(s.stddev, stddev(xs));
  EXPECT_EQ(s.count, 4);
}

TEST(Stats, RSquaredPerfectAndPoor) {
  const std::vector<real_t> a = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(r_squared(a, a), 1.0);
  const std::vector<real_t> flipped = {3.0, 2.0, 1.0};
  EXPECT_LT(r_squared(a, flipped), 0.0);
}

TEST(Stats, PreconditionsThrow) {
  const std::vector<real_t> empty;
  EXPECT_THROW((void)mean(empty), PreconditionError);
  const std::vector<real_t> one = {1.0};
  EXPECT_THROW((void)stddev(one), PreconditionError);
}

TEST(LinearFit, RecoversExactLine) {
  const std::vector<real_t> xs = {0.0, 1.0, 2.0, 3.0};
  std::vector<real_t> ys;
  for (real_t x : xs) ys.push_back(2.5 * x - 1.0);
  const Line line = fit_line(xs, ys);
  EXPECT_NEAR(line.slope, 2.5, 1e-12);
  EXPECT_NEAR(line.intercept, -1.0, 1e-12);
  EXPECT_NEAR(line(10.0), 24.0, 1e-10);
}

TEST(LinearFit, FixedInterceptMinimizesSlopeOnly) {
  const std::vector<real_t> xs = {1.0, 2.0, 3.0};
  const std::vector<real_t> ys = {3.0, 5.0, 7.0};  // y = 2x + 1
  const Line line = fit_line_fixed_intercept(xs, ys, 1.0);
  EXPECT_NEAR(line.slope, 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(line.intercept, 1.0);
}

TEST(LinearFit, DegenerateXThrows) {
  const std::vector<real_t> xs = {2.0, 2.0};
  const std::vector<real_t> ys = {1.0, 3.0};
  EXPECT_THROW((void)fit_line(xs, ys), NumericError);
}

TEST(CommModelFit, LatencyAnchoredAtZeroByteMessage) {
  // t(m) = m / b + l with b = 2000 B/us-equivalent, l = 5.
  std::vector<real_t> sizes, times;
  for (real_t m : {0.0, 64.0, 1024.0, 65536.0, 1048576.0}) {
    sizes.push_back(m);
    times.push_back(m / 2000.0 + 5.0);
  }
  const CommModel cm = fit_comm_model(sizes, times);
  EXPECT_DOUBLE_EQ(cm.latency, 5.0);
  EXPECT_NEAR(cm.bandwidth, 2000.0, 1e-6);
  EXPECT_NEAR(cm.time(4096.0), 4096.0 / 2000.0 + 5.0, 1e-9);
}

TEST(CommModelFit, UnsortedSizesRejected) {
  const std::vector<real_t> sizes = {10.0, 5.0};
  const std::vector<real_t> times = {1.0, 1.0};
  EXPECT_THROW((void)fit_comm_model(sizes, times), PreconditionError);
}

TEST(TwoLineFit, RecoversNoiselessParameters) {
  const TwoLineModel truth{7790.0, 1264.8, 9.0};
  std::vector<real_t> xs, ys;
  for (index_t n = 1; n <= 36; ++n) {
    xs.push_back(static_cast<real_t>(n));
    ys.push_back(truth(static_cast<real_t>(n)));
  }
  const TwoLineModel m = fit_two_line(xs, ys);
  EXPECT_NEAR(m.a1, truth.a1, truth.a1 * 0.02);
  EXPECT_NEAR(m.a2, truth.a2, std::abs(truth.a2) * 0.05);
  EXPECT_NEAR(m.a3, truth.a3, 0.5);
  // Residual SSE small relative to the data's magnitude (the scanned
  // breakpoint lands within grid resolution of the true knee).
  real_t scale = 0.0;
  for (real_t y : ys) scale += y * y;
  EXPECT_LT(two_line_sse(m, xs, ys), 1e-8 * scale);
}

TEST(TwoLineFit, RecoversUnderNoise) {
  const TwoLineModel truth{6768.24, 369.16, 6.39};
  Xoshiro256 rng(42);
  std::vector<real_t> xs, ys;
  for (index_t n = 1; n <= 40; ++n) {
    xs.push_back(static_cast<real_t>(n));
    ys.push_back(truth(static_cast<real_t>(n)) *
                 (1.0 + 0.01 * rng.gaussian()));
  }
  const TwoLineModel m = fit_two_line(xs, ys);
  EXPECT_NEAR(m.a1, truth.a1, truth.a1 * 0.05);
  EXPECT_NEAR(m.a3, truth.a3, 1.5);
}

TEST(TwoLineFit, NegativeSaturatedSlope) {
  // CSP-2 Hyp. has a2 < 0 (hyperthreads reduce bandwidth past the knee).
  const TwoLineModel truth{8629.29, -93.43, 9.87};
  std::vector<real_t> xs, ys;
  for (index_t n = 1; n <= 72; ++n) {
    xs.push_back(static_cast<real_t>(n));
    ys.push_back(truth(static_cast<real_t>(n)));
  }
  const TwoLineModel m = fit_two_line(xs, ys);
  EXPECT_LT(m.a2, 0.0);
  EXPECT_NEAR(m.a3, truth.a3, 1.0);
}

TEST(TwoLineModel, ContinuousAtBreakpoint) {
  const TwoLineModel m{100.0, 10.0, 8.0};
  EXPECT_NEAR(m(8.0 - 1e-9), m(8.0 + 1e-9), 1e-5);
  EXPECT_DOUBLE_EQ(m(8.0), 100.0 * 8.0);
}

TEST(NelderMead, MinimizesRosenbrockLikeBowl) {
  const auto f = [](real_t x, real_t y) {
    return (x - 3.0) * (x - 3.0) + 10.0 * (y + 1.5) * (y + 1.5);
  };
  const MinimizeResult r = nelder_mead_2d(f, {0.0, 0.0}, {1.0, 1.0});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 3.0, 1e-4);
  EXPECT_NEAR(r.x[1], -1.5, 1e-4);
}

TEST(ImbalanceModel, ZIsOneForSerialAndGrows) {
  const ImbalanceModel m{0.2, 0.05};
  EXPECT_DOUBLE_EQ(m.z(1.0), 1.0);
  EXPECT_GT(m.z(64.0), m.z(8.0));
  EXPECT_GT(m.z(8.0), 1.0);
}

TEST(ImbalanceFit, RecoversParameters) {
  const ImbalanceModel truth{0.18, 0.07};
  std::vector<real_t> ns, zs;
  for (real_t n : {2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0}) {
    ns.push_back(n);
    zs.push_back(truth.z(n));
  }
  const ImbalanceModel m = fit_imbalance(ns, zs);
  for (real_t n : ns) {
    EXPECT_NEAR(m.z(n), truth.z(n), 0.02) << "n = " << n;
  }
}

TEST(EventCountModel, ZeroWithinOneNodeAndGrows) {
  const EventCountModel m{2.0, 0.2};
  EXPECT_DOUBLE_EQ(m.events(4.0, 4.0), 0.0);
  EXPECT_GT(m.events(64.0, 2.0), m.events(16.0, 2.0));
}

TEST(EventCountFit, RecoversShape) {
  const EventCountModel truth{3.0, 0.15};
  std::vector<real_t> ns, nodes, events;
  for (real_t n : {8.0, 16.0, 32.0, 64.0, 128.0}) {
    for (real_t nn : {2.0, 4.0}) {
      ns.push_back(n);
      nodes.push_back(nn);
      events.push_back(truth.events(n, nn));
    }
  }
  const EventCountModel m = fit_event_count(ns, nodes, events);
  for (std::size_t i = 0; i < ns.size(); ++i) {
    EXPECT_NEAR(m.events(ns[i], nodes[i]), events[i],
                0.05 * events[i] + 0.5);
  }
}

TEST(Interp1D, InterpolatesAndExtrapolates) {
  Interp1D interp({0.0, 1.0, 3.0}, {0.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(interp(0.5), 1.0);
  EXPECT_DOUBLE_EQ(interp(2.0), 3.0);
  EXPECT_DOUBLE_EQ(interp(4.0), 5.0);   // edge-slope extrapolation
  EXPECT_DOUBLE_EQ(interp(-1.0), -2.0);
}

TEST(Interp1D, RejectsNonIncreasingX) {
  EXPECT_THROW(Interp1D({0.0, 0.0}, {1.0, 2.0}), PreconditionError);
}

}  // namespace
}  // namespace hemo::fit
