// Tests for the paper's contribution: instance/workload calibration and the
// direct + generalized performance models, including the paper-shape
// properties (parameter recovery, consistent overprediction, latency-
// dominated communication at scale).
#include <gtest/gtest.h>

#include <cmath>

#include "core/calibration.hpp"
#include "core/models.hpp"
#include "harvey/simulation.hpp"

namespace hemo::core {
namespace {

harvey::Simulation make_sim(geometry::Geometry geo) {
  harvey::SimulationOptions opts;
  opts.solver.tau = 0.8;
  return harvey::Simulation(std::move(geo), opts);
}

const InstanceCalibration& csp2_calibration() {
  static const InstanceCalibration cal =
      calibrate_instance(cluster::instance_by_abbrev("CSP-2"));
  return cal;
}

TEST(CalibrateInstance, RecoversTableThreeMemoryParameters) {
  // The fitting pipeline must rediscover the ground-truth two-line law
  // from the simulated STREAM sweep (closing the paper's Table III loop).
  const auto& profile = cluster::instance_by_abbrev("CSP-2");
  const InstanceCalibration cal = csp2_calibration();
  EXPECT_NEAR(cal.memory.a1, profile.memory.a1, profile.memory.a1 * 0.10);
  EXPECT_NEAR(cal.memory.a2, profile.memory.a2, profile.memory.a2 * 0.15);
  EXPECT_NEAR(cal.memory.a3, profile.memory.a3, 2.0);
}

TEST(CalibrateInstance, RecoversCommunicationParameters) {
  const auto& profile = cluster::instance_by_abbrev("CSP-2 EC");
  const InstanceCalibration cal = calibrate_instance(profile);
  // The nonlinearity biases the fitted bandwidth/latency slightly; the
  // parameters must still land near the ground truth.
  EXPECT_NEAR(cal.inter.latency, profile.inter.latency.value(),
              profile.inter.latency.value() * 0.15);
  EXPECT_NEAR(cal.inter.bandwidth, profile.inter.bandwidth.value(),
              profile.inter.bandwidth.value() * 0.25);
  ASSERT_TRUE(cal.inter_raw.has_value());
  EXPECT_GT((*cal.inter_raw)(65536.0), (*cal.inter_raw)(64.0));
}

TEST(CalibrateInstance, EcCalibrationBeatsNoEc) {
  const InstanceCalibration ec =
      calibrate_instance(cluster::instance_by_abbrev("CSP-2 EC"));
  const InstanceCalibration& noec = csp2_calibration();
  EXPECT_GT(ec.inter.bandwidth, noec.inter.bandwidth);
  EXPECT_LT(ec.inter.latency, noec.inter.latency);
}

TEST(CalibrateWorkload, FitsImbalanceAndEvents) {
  auto sim = make_sim(geometry::make_cylinder({.radius = 8, .length = 64}));
  const std::vector<index_t> counts = {2, 4, 8, 16, 32, 64};
  const WorkloadCalibration cal = calibrate_workload(sim, counts, 36);
  EXPECT_EQ(cal.total_points, sim.mesh().num_points());
  EXPECT_GT(cal.serial_bytes.value(), 0.0);
  // 5 dists * 8 bytes
  EXPECT_DOUBLE_EQ(cal.point_comm_bytes.value(), 40.0);
  // z law fits measured imbalance reasonably at the sampled counts.
  for (index_t n : counts) {
    const real_t measured = decomp::measured_imbalance(
        sim.mesh(), sim.partition(n), cal.kernel);
    EXPECT_NEAR(cal.imbalance.z(static_cast<real_t>(n)), measured,
                0.20 * measured)
        << "n = " << n;
  }
}

TEST(DirectModel, PredictsPositiveDecomposedRuntime) {
  auto sim = make_sim(geometry::make_cylinder({.radius = 8, .length = 64}));
  const auto& plan = sim.plan(36, 36);
  const ModelPrediction pred = predict_direct(plan, csp2_calibration());
  EXPECT_GT(pred.t_mem.value(), 0.0);
  EXPECT_GT(pred.t_comm.value(), 0.0);
  EXPECT_NEAR(pred.step_seconds.value(),
              (pred.t_mem + pred.t_comm).value(), 1e-15);
  EXPECT_NEAR(pred.t_comm.value(),
              (pred.t_intra + pred.t_inter).value(), 1e-12);
  EXPECT_GT(pred.mflups.value(), 0.0);
}

TEST(DirectModel, OverpredictsMeasuredThroughputConsistently) {
  // The paper's central empirical observation (Figs. 7-8): both models
  // overpredict by a roughly consistent factor, because the models cannot
  // see application-level inefficiency.
  auto sim = make_sim(geometry::make_cylinder({.radius = 8, .length = 64}));
  const auto& profile = cluster::instance_by_abbrev("CSP-2");
  const InstanceCalibration& cal = csp2_calibration();
  std::vector<real_t> ratios;
  for (index_t n : {4, 9, 18, 36}) {
    const auto& plan = sim.plan(n, 36);
    const ModelPrediction pred = predict_direct(plan, cal);
    const auto measured = sim.measure(profile, n, 200);
    EXPECT_GT(pred.mflups.value(), measured.mflups.value()) << "n = " << n;
    ratios.push_back(pred.mflups / measured.mflups);
  }
  // Consistency: the overprediction factor varies by < 35 % across scales.
  const real_t lo = *std::min_element(ratios.begin(), ratios.end());
  const real_t hi = *std::max_element(ratios.begin(), ratios.end());
  EXPECT_LT(hi / lo, 1.35);
  EXPECT_GT(lo, 1.05);  // genuinely above measurement
  EXPECT_LT(hi, 2.2);   // but in the right ballpark
}

TEST(GeneralModel, TracksDirectModelShape) {
  // Fig. 7: generalized predictions drift from direct ones but stay close.
  auto sim = make_sim(geometry::make_cylinder({.radius = 8, .length = 64}));
  const std::vector<index_t> counts = {2, 4, 8, 16, 32};
  WorkloadCalibration wcal = calibrate_workload(sim, counts, 36);
  const InstanceCalibration& cal = csp2_calibration();
  for (index_t n : {4, 16, 32}) {
    const ModelPrediction d = predict_direct(sim.plan(n, 36), cal);
    const ModelPrediction g = predict_general(wcal, cal, n, 36);
    EXPECT_NEAR(g.mflups.value(), d.mflups.value(), 0.5 * d.mflups.value())
        << "n = " << n;
  }
}

TEST(GeneralModel, SerialCaseHasNoCommunication) {
  auto sim = make_sim(geometry::make_cylinder({.radius = 6, .length = 32}));
  const std::vector<index_t> counts = {2, 4, 8};
  const WorkloadCalibration wcal = calibrate_workload(sim, counts, 36);
  const ModelPrediction p = predict_general(wcal, csp2_calibration(), 1, 36);
  EXPECT_DOUBLE_EQ(p.t_comm.value(), 0.0);
  EXPECT_GT(p.t_mem.value(), 0.0);
}

TEST(GeneralModel, CommunicationBecomesLatencyDominatedAtScale) {
  // Fig. 10's conclusion: "the bulk of the internodal communication time
  // is due to latency and not due to insufficient bandwidth".
  auto sim = make_sim(geometry::make_cylinder({.radius = 8, .length = 64}));
  const std::vector<index_t> counts = {2, 4, 8, 16, 32, 64};
  const WorkloadCalibration wcal = calibrate_workload(sim, counts, 36);
  const ModelPrediction p =
      predict_general(wcal, csp2_calibration(), 512, 36);
  EXPECT_GT(p.t_comm_lat.value(), p.t_comm_bw.value());
}

TEST(GeneralModel, MemTermShrinksWithTasks) {
  auto sim = make_sim(geometry::make_cylinder({.radius = 8, .length = 64}));
  const std::vector<index_t> counts = {2, 4, 8, 16};
  const WorkloadCalibration wcal = calibrate_workload(sim, counts, 36);
  const InstanceCalibration& cal = csp2_calibration();
  const units::Seconds mem36 = predict_general(wcal, cal, 36, 36).t_mem;
  const units::Seconds mem144 = predict_general(wcal, cal, 144, 36).t_mem;
  EXPECT_LT(mem144.value(), mem36.value());
}

TEST(RelativeValue, MatrixIsReciprocal) {
  ModelPrediction a, b;
  a.mflups = units::Mflups(100.0);
  b.mflups = units::Mflups(130.0);
  EXPECT_NEAR(relative_value(b, a), 1.3, 1e-12);
  EXPECT_NEAR(relative_value(a, b) * relative_value(b, a), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(relative_value(a, a), 1.0);
}

}  // namespace
}  // namespace hemo::core
