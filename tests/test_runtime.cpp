// Tests for the threaded-rank parallel runtime: bit-identity against the
// serial solver across rank counts and geometries (including runs with
// dynamic rebalancing migrations), halo-topology invariants, the
// rebalance controller policy, and measured-vs-model validation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>

#include "decomp/comm_graph.hpp"
#include "harvey/distributed.hpp"
#include "runtime/parallel_solver.hpp"
#include "runtime/rebalance.hpp"
#include "runtime/validation.hpp"

namespace hemo::runtime {
namespace {

lbm::SolverParams base_params() {
  lbm::SolverParams params;
  params.tau = 0.8;
  return params;
}

geometry::Geometry named_geometry(const std::string& name) {
  if (name == "cylinder") {
    return geometry::make_cylinder({.radius = 5, .length = 24});
  }
  return geometry::make_cerebral({.depth = 3});
}

/// The decisive acceptance test: the threaded runtime's canonical state
/// must equal the serial solver's bit for bit, for every rank count, on
/// both a compact and a branching geometry.
class ParallelEquivalence
    : public ::testing::TestWithParam<std::tuple<index_t, std::string>> {};

TEST_P(ParallelEquivalence, StateMatchesSerialSolverBitwise) {
  const auto [n_ranks, geo_name] = GetParam();
  const auto geo = named_geometry(geo_name);
  const auto mesh = lbm::FluidMesh::build(geo.grid);
  const auto params = base_params();

  lbm::Solver<double> serial(mesh, params, std::span(geo.inlets));
  const auto part = decomp::make_partition(mesh, n_ranks,
                                           decomp::Strategy::kRcb);
  ParallelSolver parallel(mesh, part, params, std::span(geo.inlets));

  serial.run(40);
  parallel.run(40);

  EXPECT_EQ(parallel.timestep(), 40);
  const auto expected = serial.export_state();
  const auto actual = parallel.export_state();
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(actual[i], expected[i]) << "value " << i;
  }
  for (const auto& timing : parallel.timings()) {
    EXPECT_EQ(timing.steps, 40);
    EXPECT_GT(timing.busy_s(), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RankSweep, ParallelEquivalence,
    ::testing::Combine(::testing::Values<index_t>(1, 2, 4, 8),
                       ::testing::Values(std::string("cylinder"),
                                         std::string("bifurcation"))),
    [](const auto& info) {
      return std::get<1>(info.param) + "_ranks" +
             std::to_string(std::get<0>(info.param));
    });

TEST(ParallelSolver, PulsatileInletMatchesSerialBitwise) {
  // The pulse scale depends on the shared timestep; lockstep epochs must
  // keep every rank on the same t.
  auto geo = geometry::make_cylinder({.radius = 5, .length = 24});
  for (auto& inlet : geo.inlets) {
    inlet.pulse_amplitude = 0.4;
    inlet.pulse_period = 15.0;
  }
  const auto mesh = lbm::FluidMesh::build(geo.grid);
  const auto params = base_params();
  lbm::Solver<double> serial(mesh, params, std::span(geo.inlets));
  ParallelSolver parallel(
      mesh, decomp::make_partition(mesh, 4, decomp::Strategy::kSlab), params,
      std::span(geo.inlets));
  serial.run(45);
  parallel.run(45);
  EXPECT_EQ(parallel.export_state(), serial.export_state());
}

TEST(ParallelSolver, LesMatchesSerialBitwise) {
  const auto geo = geometry::make_cylinder({.radius = 5, .length = 24});
  const auto mesh = lbm::FluidMesh::build(geo.grid);
  auto params = base_params();
  params.smagorinsky_cs = 0.12;
  lbm::Solver<double> serial(mesh, params, std::span(geo.inlets));
  ParallelSolver parallel(
      mesh, decomp::make_partition(mesh, 4, decomp::Strategy::kRcb), params,
      std::span(geo.inlets));
  serial.run(30);
  parallel.run(30);
  EXPECT_EQ(parallel.export_state(), serial.export_state());
}

TEST(ParallelSolver, RequestedMigrationPreservesBitIdentity) {
  // A migration mid-run only moves ownership: gather, re-partition,
  // scatter. The state afterwards must equal an unmigrated serial run.
  const auto geo = geometry::make_cylinder({.radius = 5, .length = 24});
  const auto mesh = lbm::FluidMesh::build(geo.grid);
  const auto params = base_params();
  lbm::Solver<double> serial(mesh, params, std::span(geo.inlets));
  const auto part = decomp::make_partition(mesh, 4, decomp::Strategy::kSlab);
  ParallelSolver parallel(mesh, part, params, std::span(geo.inlets));

  parallel.run(20);
  const auto before = parallel.partition().points_of[0].size();
  parallel.request_migration(0, 1, 40);
  EXPECT_EQ(parallel.rebalance_count(), 1);
  EXPECT_EQ(parallel.partition().points_of[0].size(), before - 40);
  parallel.run(20);

  serial.run(40);
  EXPECT_EQ(parallel.export_state(), serial.export_state());
  EXPECT_EQ(parallel.timestep(), serial.timestep());
}

TEST(ParallelSolver, DynamicRebalanceTriggersAndPreservesBitIdentity) {
  // A deliberately skewed two-rank split: rank 0 owns ~4x the points of
  // rank 1, so measured busy-time imbalance exceeds the threshold in every
  // window and an aggressive controller must migrate at least once.
  const auto geo = geometry::make_cylinder({.radius = 5, .length = 24});
  const auto mesh = lbm::FluidMesh::build(geo.grid);
  const index_t n = mesh.num_points();
  const index_t split = n * 4 / 5;
  decomp::Partition part;
  part.n_tasks = 2;
  part.task_of.resize(static_cast<std::size_t>(n));
  part.points_of.resize(2);
  for (index_t p = 0; p < n; ++p) {
    const std::int32_t t = p < split ? 0 : 1;
    part.task_of[static_cast<std::size_t>(p)] = t;
    part.points_of[static_cast<std::size_t>(t)].push_back(p);
  }

  const auto params = base_params();
  RuntimeOptions options;
  options.rebalance.enabled = true;
  options.rebalance.window = 4;
  options.rebalance.threshold = 1.05;
  options.rebalance.patience = 1;
  options.rebalance.min_block = 8;
  ParallelSolver parallel(mesh, part, params, std::span(geo.inlets),
                          options);

  // Run in chunks until a migration happened (generous cap; the 4:1 skew
  // triggers within the first windows on any scheduler).
  index_t steps = 0;
  while (parallel.rebalance_count() == 0 && steps < 400) {
    parallel.run(20);
    steps += 20;
  }
  ASSERT_GE(parallel.rebalance_count(), 1)
      << "no migration after " << steps << " steps";
  // The skew must have shrunk: rank 0 gave points away.
  EXPECT_LT(parallel.partition().points_of[0].size(),
            static_cast<std::size_t>(split));

  lbm::Solver<double> serial(mesh, params, std::span(geo.inlets));
  serial.run(steps);
  EXPECT_EQ(parallel.export_state(), serial.export_state());
}

TEST(ParallelSolver, RestoreStateRoundTripsThroughSerialCheckpoint) {
  const auto geo = geometry::make_cylinder({.radius = 4, .length = 16});
  const auto mesh = lbm::FluidMesh::build(geo.grid);
  const auto params = base_params();
  lbm::Solver<double> serial(mesh, params, std::span(geo.inlets));
  serial.run(25);
  const auto checkpoint = serial.export_state();

  ParallelSolver parallel(
      mesh, decomp::make_partition(mesh, 3, decomp::Strategy::kRcb), params,
      std::span(geo.inlets));
  parallel.restore_state(checkpoint, 25);
  EXPECT_EQ(parallel.timestep(), 25);
  EXPECT_EQ(parallel.export_state(), checkpoint);

  serial.run(10);
  parallel.run(10);
  EXPECT_EQ(parallel.export_state(), serial.export_state());
}

TEST(ParallelSolver, MomentsAndMassAgreeWithDistributedSolver) {
  // The serial-exchange DistributedSolver and the threaded runtime share
  // the halo layer; their observables must agree exactly.
  const auto geo = geometry::make_cylinder({.radius = 5, .length = 24});
  const auto mesh = lbm::FluidMesh::build(geo.grid);
  const auto params = base_params();
  const auto part = decomp::make_partition(mesh, 5, decomp::Strategy::kRcb);
  harvey::DistributedSolver dist(mesh, part, params, std::span(geo.inlets));
  ParallelSolver parallel(mesh, part, params, std::span(geo.inlets));
  dist.run(30);
  parallel.run(30);
  for (index_t p = 0; p < mesh.num_points(); ++p) {
    const auto md = dist.moments_at(p);
    const auto mp = parallel.moments_at(p);
    ASSERT_DOUBLE_EQ(md.rho, mp.rho) << "point " << p;
    ASSERT_DOUBLE_EQ(md.ux, mp.ux) << "point " << p;
    ASSERT_DOUBLE_EQ(md.uy, mp.uy) << "point " << p;
    ASSERT_DOUBLE_EQ(md.uz, mp.uz) << "point " << p;
  }
  EXPECT_DOUBLE_EQ(dist.total_mass(), parallel.total_mass());
}

TEST(ParallelSolver, KernelPathsAreBitIdentical) {
  // Satellite of the DistributedSolver lift: the segmented local-partition
  // path must equal the reference path and the serial solver exactly.
  const auto geo = geometry::make_cylinder({.radius = 5, .length = 24});
  const auto mesh = lbm::FluidMesh::build(geo.grid);
  auto reference = base_params();
  reference.kernel.path = lbm::KernelPath::kReference;
  auto segmented = base_params();
  segmented.kernel.path = lbm::KernelPath::kSegmented;
  const auto part = decomp::make_partition(mesh, 4, decomp::Strategy::kRcb);

  ParallelSolver ref_solver(mesh, part, reference, std::span(geo.inlets));
  ParallelSolver seg_solver(mesh, part, segmented, std::span(geo.inlets));
  harvey::DistributedSolver dist_ref(mesh, part, reference,
                                     std::span(geo.inlets));
  lbm::Solver<double> serial(mesh, segmented, std::span(geo.inlets));
  ref_solver.run(30);
  seg_solver.run(30);
  dist_ref.run(30);
  serial.run(30);

  const auto expected = serial.export_state();
  EXPECT_EQ(ref_solver.export_state(), expected);
  EXPECT_EQ(seg_solver.export_state(), expected);
  for (index_t p = 0; p < mesh.num_points(); p += 97) {
    const auto ms = serial.moments_at(p);
    const auto md = dist_ref.moments_at(p);
    ASSERT_DOUBLE_EQ(ms.rho, md.rho) << "point " << p;
    ASSERT_DOUBLE_EQ(ms.uz, md.uz) << "point " << p;
  }
}

TEST(ParallelSolver, TopologyMatchesCommGraphStructure) {
  const auto geo = geometry::make_cylinder({.radius = 5, .length = 24});
  const auto mesh = lbm::FluidMesh::build(geo.grid);
  const auto part = decomp::make_partition(mesh, 6, decomp::Strategy::kRcb);
  ParallelSolver parallel(mesh, part, base_params(), std::span(geo.inlets));

  const auto graph = decomp::build_comm_graph(mesh, part);
  // One mailbox per directed message of the communication graph.
  EXPECT_EQ(parallel.channel_count(),
            static_cast<index_t>(graph.messages.size()));
  // Ghosts deduplicate links sharing an upstream point.
  index_t total_links = 0;
  for (const auto& m : graph.messages) total_links += m.link_count;
  EXPECT_GT(parallel.ghost_count(), 0);
  EXPECT_LE(parallel.ghost_count(), total_links);
  EXPECT_GT(parallel.bytes_per_exchange(), 0.0);
}

TEST(ParallelSolver, InteriorAndFrontierPartitionOwnedSlots) {
  const auto geo = geometry::make_cylinder({.radius = 5, .length = 24});
  const auto mesh = lbm::FluidMesh::build(geo.grid);
  const auto part = decomp::make_partition(mesh, 4, decomp::Strategy::kRcb);
  const auto topo = harvey::build_halo_exchange(mesh, part);
  for (const auto& rank : topo.ranks) {
    EXPECT_EQ(static_cast<index_t>(rank.interior_slots.size() +
                                   rank.frontier_slots.size()),
              rank.num_local());
    // Interior slots never gather from a ghost row.
    for (const index_t i : rank.interior_slots) {
      for (index_t q = 0; q < lbm::kQ; ++q) {
        const auto nb =
            rank.neighbors[static_cast<std::size_t>(i * lbm::kQ + q)];
        EXPECT_TRUE(nb == lbm::kSolidLink ||
                    static_cast<index_t>(nb) < rank.num_local());
      }
    }
  }
}

TEST(ParallelSolver, RejectsUnsupportedConfigurations) {
  const auto geo = geometry::make_cylinder({.radius = 4, .length = 12});
  const auto mesh = lbm::FluidMesh::build(geo.grid);
  const auto part = decomp::make_partition(mesh, 2, decomp::Strategy::kRcb);
  auto aa = base_params();
  aa.kernel.propagation = lbm::Propagation::kAA;
  EXPECT_THROW(ParallelSolver(mesh, part, aa, std::span(geo.inlets)),
               PreconditionError);
  auto single = base_params();
  single.kernel.precision = lbm::Precision::kSingle;
  EXPECT_THROW(ParallelSolver(mesh, part, single, std::span(geo.inlets)),
               PreconditionError);
}

TEST(RebalanceController, QuietWindowsNeverTrigger) {
  RebalanceOptions options;
  options.enabled = true;
  options.threshold = 1.25;
  options.patience = 1;
  RebalanceController controller(options);
  decomp::Partition part;
  part.n_tasks = 2;
  part.points_of = {{0, 1, 2, 3}, {4, 5, 6, 7}};
  part.task_of = {0, 0, 0, 0, 1, 1, 1, 1};
  const std::vector<std::vector<std::int32_t>> neighbors = {{1}, {0}};
  const std::vector<real_t> balanced = {1.0, 1.01};
  for (int w = 0; w < 5; ++w) {
    EXPECT_FALSE(
        controller.observe_window(balanced, part, neighbors).has_value());
  }
  EXPECT_EQ(controller.hot_windows(), 0);
}

TEST(RebalanceController, SustainedImbalancePlansMigrationAfterPatience) {
  RebalanceOptions options;
  options.enabled = true;
  options.threshold = 1.25;
  options.patience = 2;
  options.min_block = 1;
  options.move_fraction = 0.5;
  RebalanceController controller(options);
  decomp::Partition part;
  part.n_tasks = 3;
  part.points_of = {{0, 1, 2, 3, 4, 5, 6, 7}, {8, 9}, {10, 11}};
  part.task_of = {0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 2, 2};
  const std::vector<std::vector<std::int32_t>> neighbors = {
      {1, 2}, {0, 2}, {0, 1}};
  const std::vector<real_t> skewed = {4.0, 1.0, 0.5};

  // First hot window: patience not yet reached.
  EXPECT_FALSE(controller.observe_window(skewed, part, neighbors).has_value());
  EXPECT_EQ(controller.hot_windows(), 1);
  // Second: plan issued, hot rank 0 donates to its coolest neighbor 2.
  const auto plan = controller.observe_window(skewed, part, neighbors);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->from, 0);
  EXPECT_EQ(plan->to, 2);
  EXPECT_GE(plan->count, 1);
  EXPECT_LT(plan->count, 8);
  EXPECT_EQ(controller.hot_windows(), 0);  // streak resets after a plan
}

TEST(RebalanceController, DisabledControllerIsInert) {
  RebalanceController controller(RebalanceOptions{});  // enabled = false
  decomp::Partition part;
  part.n_tasks = 2;
  part.points_of = {{0, 1, 2}, {3}};
  part.task_of = {0, 0, 0, 1};
  const std::vector<std::vector<std::int32_t>> neighbors = {{1}, {0}};
  const std::vector<real_t> skewed = {10.0, 0.1};
  for (int w = 0; w < 4; ++w) {
    EXPECT_FALSE(
        controller.observe_window(skewed, part, neighbors).has_value());
  }
}

TEST(Validation, PredictionsScaleWithPartitionBytes) {
  const auto geo = geometry::make_cylinder({.radius = 5, .length = 24});
  const auto mesh = lbm::FluidMesh::build(geo.grid);
  const auto part = decomp::make_partition(mesh, 4, decomp::Strategy::kRcb);
  LocalHostModel host;
  host.copy_mbs = 10000.0;
  host.comm = fit::CommModel{.bandwidth = 1e9, .latency = 1e-6};
  const auto predictions =
      predict_per_rank(mesh, part, lbm::KernelConfig{}, host);
  ASSERT_EQ(predictions.size(), 4u);
  const auto bytes = decomp::task_bytes_per_step(mesh, part, {});
  for (std::size_t r = 0; r < predictions.size(); ++r) {
    EXPECT_DOUBLE_EQ(predictions[r].t_mem_s, bytes[r] / 1e10);
    EXPECT_GT(predictions[r].t_comm_s, 0.0);  // every rank communicates
    EXPECT_GT(predictions[r].step_s(), predictions[r].t_mem_s);
  }
}

TEST(Validation, ValidateRunReportsErrorsAndRecordsDrift) {
  const auto geo = geometry::make_cylinder({.radius = 5, .length = 24});
  const auto mesh = lbm::FluidMesh::build(geo.grid);
  const auto part = decomp::make_partition(mesh, 2, decomp::Strategy::kRcb);
  LocalHostModel host;
  host.copy_mbs = 10000.0;
  host.comm = fit::CommModel{.bandwidth = 1e9, .latency = 1e-6};
  const auto predictions =
      predict_per_rank(mesh, part, lbm::KernelConfig{}, host);

  // Synthetic measurement: exactly 2x the predicted times, so every
  // signed relative error is (pred - meas) / meas = -0.5.
  std::vector<RankTimings> timings(2);
  for (std::size_t r = 0; r < 2; ++r) {
    timings[r].steps = 10;
    timings[r].mem_s = 2.0 * predictions[r].t_mem_s * 10.0;
    timings[r].pack_s = 2.0 * predictions[r].t_comm_s * 10.0;
  }

  obs::MetricsRegistry registry;
  registry.enable(true);
  const auto report = validate_run(mesh, part, {}, host, timings, "cyl",
                                   registry);
  ASSERT_EQ(report.ranks.size(), 2u);
  for (const auto& rank : report.ranks) {
    EXPECT_NEAR(rank.mem_rel_error, -0.5, 1e-12);
    EXPECT_NEAR(rank.comm_rel_error, -0.5, 1e-12);
    EXPECT_NEAR(rank.step_rel_error, -0.5, 1e-12);
  }
  EXPECT_GT(report.measured_step_s, report.predicted_step_s);
  EXPECT_GT(report.predicted_mflups, report.measured_mflups);

  bool saw_mem = false, saw_comm = false, saw_drift = false;
  for (const auto& series : registry.snapshot()) {
    saw_mem = saw_mem || series.name == "runtime_model_mem_rel_error";
    saw_comm = saw_comm || series.name == "runtime_model_comm_rel_error";
    saw_drift = saw_drift || series.name == "model_drift_samples_total";
  }
  EXPECT_TRUE(saw_mem);
  EXPECT_TRUE(saw_comm);
  EXPECT_TRUE(saw_drift);
}

TEST(Validation, LocalHostModelMeasuresThisMachine) {
  const auto host = LocalHostModel::measure(1 << 16, 1, 5);
  EXPECT_GT(host.copy_mbs, 0.0);
  EXPECT_GT(host.comm.bandwidth, 0.0);
  EXPECT_GE(host.comm.latency, 0.0);
}

TEST(ParallelSolver, WindowMetricsFlushThroughRegistry) {
  // The epoch callback flushes per-window busy times and the measured
  // imbalance gauge into the global registry when it is enabled.
  auto& registry = obs::MetricsRegistry::global();
  registry.reset();
  registry.enable(true);
  const auto geo = geometry::make_cylinder({.radius = 4, .length = 16});
  const auto mesh = lbm::FluidMesh::build(geo.grid);
  RuntimeOptions options;
  options.rebalance.window = 8;
  options.workload = "metrics-test";
  ParallelSolver parallel(
      mesh, decomp::make_partition(mesh, 2, decomp::Strategy::kRcb),
      base_params(), std::span(geo.inlets), options);
  parallel.run(16);  // two full windows
  bool saw_busy = false, saw_imbalance = false, saw_windows = false;
  for (const auto& series : registry.snapshot()) {
    saw_busy = saw_busy || series.name == "runtime_window_busy_seconds";
    saw_imbalance =
        saw_imbalance || series.name == "runtime_measured_imbalance";
    if (series.name == "runtime_windows_total") {
      saw_windows = true;
      EXPECT_DOUBLE_EQ(series.value, 2.0);
    }
  }
  registry.enable(false);
  registry.reset();
  EXPECT_TRUE(saw_busy);
  EXPECT_TRUE(saw_imbalance);
  EXPECT_TRUE(saw_windows);
}

}  // namespace
}  // namespace hemo::runtime
