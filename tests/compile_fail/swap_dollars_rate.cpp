// Acceptance case: total_cost(rate, runtime) rejects swapped arguments and
// a Dollars total where the $/hour rate belongs.
#include "core/models.hpp"
#include "units/units.hpp"

namespace hemo {

units::Dollars good() {
  return core::total_cost(units::DollarsPerHour(2.448),
                          units::Seconds(3600.0));
}

#ifdef HEMO_COMPILE_FAIL
units::Dollars bad_swapped() {
  return core::total_cost(units::Seconds(3600.0),
                          units::DollarsPerHour(2.448));
}

units::Dollars bad_total_for_rate() {
  // Dollars and DollarsPerHour are distinct dimensions, not scales.
  return core::total_cost(units::Dollars(2.448), units::Seconds(3600.0));
}

units::Dollars bad_rate_times_seconds() {
  // $/h * s must go through to_hours explicitly; no implicit 3600.
  return units::DollarsPerHour(2.448) * units::Seconds(3600.0);
}
#endif

}  // namespace hemo
