// The wrapper has no implicit conversions: a bare real_t neither enters a
// Quantity parameter nor leaves via assignment — both directions must go
// through the explicit constructor / .value().
#include "units/units.hpp"

namespace hemo {

real_t good() {
  const units::Seconds t(1.5);   // explicit in
  return t.value();              // explicit out
}

#ifdef HEMO_COMPILE_FAIL
units::Seconds bad_implicit_in(real_t raw) {
  return raw;  // real_t -> Seconds requires the explicit constructor
}

real_t bad_implicit_out(units::Seconds t) {
  return t;  // Seconds -> real_t requires .value()
}

bool bad_compare_with_raw(units::Seconds t) {
  return t > 1.0;
}
#endif

}  // namespace hemo
