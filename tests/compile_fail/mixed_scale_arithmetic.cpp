// Different scales of one dimension are distinct types: Seconds + Hours
// and Bytes + Gibibytes must not compile without an explicit conversion.
#include "units/units.hpp"

namespace hemo {

units::Seconds good() {
  return units::Seconds(10.0) + units::to_seconds(units::Hours(1.0));
}

#ifdef HEMO_COMPILE_FAIL
units::Seconds bad_seconds_plus_hours() {
  return units::Seconds(10.0) + units::Hours(1.0);
}

units::Bytes bad_bytes_plus_gibibytes() {
  return units::Bytes(512.0) + units::Gibibytes(1.0);
}

bool bad_cross_scale_compare() {
  return units::Seconds(10.0) < units::Hours(1.0);
}
#endif

}  // namespace hemo
