// Acceptance case: swapping a Seconds argument for Bytes (and vice versa)
// in the core model APIs must not compile. Driven by tools/compile_fail.py:
// this file compiles as-is; -DHEMO_COMPILE_FAIL enables the bad calls.
#include "core/models.hpp"
#include "units/units.hpp"

namespace hemo {

units::Mflups good() {
  // Control: the correct argument order compiles.
  return core::mflups_from(1.0e6, units::Seconds(0.02));
}

#ifdef HEMO_COMPILE_FAIL
units::Mflups bad_bytes_for_seconds() {
  // Bytes where the step time is expected: no Bytes -> Seconds conversion
  // exists, so overload resolution fails here.
  return core::mflups_from(1.0e6, units::Bytes(0.02));
}

units::Seconds bad_seconds_bytes_division() {
  // Seconds / Bytes has no physical meaning and no operator.
  return units::Seconds(3.0) / units::Bytes(2.0);
}
#endif

}  // namespace hemo
