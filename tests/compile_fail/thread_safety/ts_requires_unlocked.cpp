// Thread-safety compile-fail probe: a REQUIRES(mutex) helper may not be
// called without the lock. Clang-only; the guarded build must die with
//   "calling function 'push_locked' requires holding mutex 'mutex_'".
#include "util/sync.hpp"

namespace {

class BoundedQueue {
 public:
  void push(int v) {
    const hemo::MutexLock lock(mutex_);
    push_locked(v);
  }

  void push_without_lock(int v) {
#ifdef HEMO_COMPILE_FAIL
    push_locked(v);  // REQUIRES(mutex_) helper called lock-free
#else
    push(v);
#endif
  }

 private:
  void push_locked(int v) HEMO_REQUIRES(mutex_) {
    items_[static_cast<unsigned>(count_++) % 4u] = v;
  }

  hemo::Mutex mutex_;
  int items_[4] HEMO_GUARDED_BY(mutex_) = {};
  int count_ HEMO_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  BoundedQueue queue;
  queue.push(1);
  queue.push_without_lock(2);
  return 0;
}
