// Thread-safety compile-fail probe: a GUARDED_BY member may not be read
// without holding its mutex. Clang-only (registered in tests/CMakeLists.txt
// when the compiler is Clang); the guarded build must die with
//   "reading variable 'value_' requires holding mutex 'mutex_'".
#include "util/sync.hpp"

namespace {

class Counter {
 public:
  void increment() {
    const hemo::MutexLock lock(mutex_);
    ++value_;
  }

  [[nodiscard]] int read() const {
#ifdef HEMO_COMPILE_FAIL
    return value_;  // unguarded read of a GUARDED_BY(mutex_) member
#else
    const hemo::MutexLock lock(mutex_);
    return value_;
#endif
  }

 private:
  mutable hemo::Mutex mutex_;
  int value_ HEMO_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.increment();
  return counter.read() == 1 ? 0 : 1;
}
