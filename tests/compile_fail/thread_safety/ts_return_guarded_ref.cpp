// Thread-safety compile-fail probe: returning a reference to a GUARDED_BY
// member from a function that does not require the lock lets callers
// mutate it unguarded; TSA rejects the escape. Clang-only; the guarded
// build must die with
//   "returning variable 'value_' by reference requires holding mutex".
#include "util/sync.hpp"

namespace {

class Cell {
 public:
#ifdef HEMO_COMPILE_FAIL
  // Guarded reference escapes without any lock requirement.
  [[nodiscard]] int& slot() { return value_; }
#else
  // The annotated accessor: callers must already hold the lock.
  [[nodiscard]] int& slot() HEMO_REQUIRES(mutex_) { return value_; }
#endif

  [[nodiscard]] int bump() {
    const hemo::MutexLock lock(mutex_);
    return ++slot();
  }

 private:
  hemo::Mutex mutex_;
  int value_ HEMO_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Cell cell;
  return cell.bump() == 1 ? 0 : 1;
}
