// Thread-safety compile-fail probe: acquiring a mutex the caller already
// holds (self-deadlock with std::mutex) is rejected. Clang-only; the
// guarded build must die with
//   "acquiring mutex 'mutex_' that is already held".
#include "util/sync.hpp"

namespace {

class Tally {
 public:
  void bump() {
    const hemo::MutexLock lock(mutex_);
#ifdef HEMO_COMPILE_FAIL
    const hemo::MutexLock again(mutex_);  // double-acquire: deadlock
#endif
    ++value_;
  }

  [[nodiscard]] int value() {
    const hemo::MutexLock lock(mutex_);
    return value_;
  }

 private:
  hemo::Mutex mutex_;
  int value_ HEMO_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Tally tally;
  tally.bump();
  return tally.value() == 1 ? 0 : 1;
}
