// Acceptance case: time_to_solution(step, timesteps) with the arguments
// swapped must not compile — the step is a typed Seconds, the count a raw
// index_t, and neither converts to the other.
#include "core/models.hpp"
#include "units/units.hpp"

namespace hemo {

units::Seconds good() {
  return core::time_to_solution(units::Seconds(0.02), 1000);
}

#ifdef HEMO_COMPILE_FAIL
units::Seconds bad_swapped() {
  return core::time_to_solution(1000, units::Seconds(0.02));
}

units::Seconds bad_raw_step() {
  // A bare double step (the pre-units API) no longer compiles either.
  return core::time_to_solution(0.02, 1000);
}
#endif

}  // namespace hemo
