// Tests for campaign/calibration persistence and the Smagorinsky LES
// collision extension.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/persistence.hpp"
#include "geometry/generators.hpp"
#include "lbm/mesh.hpp"
#include "lbm/solver.hpp"

namespace hemo {
namespace {

TEST(CampaignPersistence, RoundTripPreservesObservations) {
  core::CampaignTracker tracker;
  tracker.record(core::Observation{"aorta", "CSP-2 EC", 36,
                                   units::Mflups(125.5),
                                   units::Mflups(99.25)});
  tracker.record(core::Observation{"cerebral", "CSP-2 Small", 128,
                                   units::Mflups(88.125),
                                   units::Mflups(70.0625)});

  std::stringstream buffer;
  core::save_campaign(tracker, buffer);
  const core::CampaignTracker restored = core::load_campaign(buffer);
  ASSERT_EQ(restored.size(), 2);
  EXPECT_EQ(restored.observations()[0].workload, "aorta");
  EXPECT_EQ(restored.observations()[0].instance, "CSP-2 EC");
  EXPECT_EQ(restored.observations()[1].n_tasks, 128);
  EXPECT_DOUBLE_EQ(restored.observations()[1].measured_mflups.value(),
                   70.0625);
  EXPECT_DOUBLE_EQ(restored.correction_factor(),
                   tracker.correction_factor());
}

TEST(CampaignPersistence, RejectsGarbage) {
  std::stringstream garbage("not a campaign file");
  EXPECT_THROW(core::load_campaign(garbage), NumericError);
}

TEST(CalibrationPersistence, RoundTripPreservesModels) {
  const auto& profile = cluster::instance_by_abbrev("CSP-2 GPU");
  const core::InstanceCalibration cal = core::calibrate_instance(profile);

  std::stringstream buffer;
  core::save_calibration(cal, buffer);
  const core::InstanceCalibration restored =
      core::load_calibration(buffer);
  EXPECT_EQ(restored.abbrev, cal.abbrev);
  EXPECT_DOUBLE_EQ(restored.memory.a1, cal.memory.a1);
  EXPECT_DOUBLE_EQ(restored.memory.a3, cal.memory.a3);
  EXPECT_DOUBLE_EQ(restored.inter.bandwidth, cal.inter.bandwidth);
  EXPECT_DOUBLE_EQ(restored.intra.latency, cal.intra.latency);
  ASSERT_TRUE(restored.inter_raw.has_value());
  // Raw tables are resampled on the power-of-two ladder; interpolated
  // values must agree closely at intermediate sizes.
  for (real_t bytes : {100.0, 5000.0, 300000.0}) {
    EXPECT_NEAR((*restored.inter_raw)(bytes), (*cal.inter_raw)(bytes),
                (*cal.inter_raw)(bytes) * 0.05);
  }
  ASSERT_TRUE(restored.gpu_bandwidth.has_value());
  EXPECT_DOUBLE_EQ(restored.gpu_bandwidth->value(),
                   cal.gpu_bandwidth->value());
  EXPECT_DOUBLE_EQ(restored.gpu_pcie->latency, cal.gpu_pcie->latency);
}

TEST(CalibrationPersistence, CpuOnlyCalibrationHasNoGpuFields) {
  const core::InstanceCalibration cal =
      core::calibrate_instance(cluster::instance_by_abbrev("TRC"));
  std::stringstream buffer;
  core::save_calibration(cal, buffer);
  const auto restored = core::load_calibration(buffer);
  EXPECT_FALSE(restored.gpu_bandwidth.has_value());
}

TEST(Smagorinsky, ZeroConstantMatchesBgkBitwise) {
  const auto geo = geometry::make_cylinder({.radius = 4, .length = 16});
  const lbm::FluidMesh mesh = lbm::FluidMesh::build(geo.grid);
  lbm::SolverParams plain, les;
  les.smagorinsky_cs = 0.0;
  lbm::Solver<double> a(mesh, plain, std::span(geo.inlets));
  lbm::Solver<double> b(mesh, les, std::span(geo.inlets));
  a.run(40);
  b.run(40);
  for (index_t p = 0; p < mesh.num_points(); p += 7) {
    EXPECT_DOUBLE_EQ(a.f_value(p, 11), b.f_value(p, 11));
  }
}

TEST(Smagorinsky, AddsEddyViscosityInShearedFlow) {
  // With eddy viscosity the same body force drives a slower flow (higher
  // effective viscosity in the sheared regions).
  const auto geo = geometry::make_periodic_cylinder(
      {.radius = 5, .length = 10});
  lbm::MeshOptions options;
  options.periodic_z = true;
  const lbm::FluidMesh mesh = lbm::FluidMesh::build(geo.grid, options);
  // Strong forcing at low viscosity so the strain-dependent term is
  // measurable; the exaggerated constant (Cs = 0.5) amplifies it further
  // for test sensitivity.
  lbm::SolverParams plain, les;
  plain.tau = 0.55;
  plain.body_force = {0.0, 0.0, 2e-4};
  les = plain;
  les.smagorinsky_cs = 0.5;
  lbm::Solver<double> a(mesh, plain, {});
  lbm::Solver<double> b(mesh, les, {});
  a.run(1500);
  b.run(1500);
  EXPECT_GT(a.mean_speed(), b.mean_speed() * 1.05);
  EXPECT_GT(b.mean_speed(), 0.0);
}

TEST(Smagorinsky, ConservesMassAndStaysStable) {
  const auto geo = geometry::make_stenosis(
      {.radius = 6, .length = 40, .severity = 0.5, .peak_velocity = 0.08});
  const lbm::FluidMesh mesh = lbm::FluidMesh::build(geo.grid);
  lbm::SolverParams les;
  les.tau = 0.55;  // aggressive: low viscosity + fast inflow
  les.smagorinsky_cs = 0.17;
  lbm::Solver<double> solver(mesh, les, std::span(geo.inlets));
  solver.run(1200);
  for (index_t p = 0; p < mesh.num_points(); p += 11) {
    const auto m = solver.moments_at(p);
    EXPECT_TRUE(std::isfinite(m.rho));
    EXPECT_GT(m.rho, 0.3);
    EXPECT_LT(m.rho, 3.0);
  }
}

}  // namespace
}  // namespace hemo
