// Tests for the roofline analysis and the refined distributed exchange:
// the paper's premise (LBM is memory-bound on every tested system) becomes
// a checked property, and the message-channel halo exchange must be
// consistent with the communication graph.
#include <gtest/gtest.h>

#include "core/roofline.hpp"
#include "decomp/comm_graph.hpp"
#include "geometry/generators.hpp"
#include "harvey/distributed.hpp"
#include "lbm/mesh.hpp"

namespace hemo {
namespace {

TEST(Roofline, PeakAndRidgeScaleWithThreads) {
  const auto& trc = cluster::instance_by_abbrev("TRC");
  const auto r1 = core::instance_roofline(trc, 1);
  const auto r40 = core::instance_roofline(trc, 40);
  EXPECT_NEAR(r40.peak.value(), r1.peak.value() * 40.0, 1e-9);
  EXPECT_GT(r40.bandwidth.value(), r1.bandwidth.value());
  // Bandwidth saturates, so the ridge point moves right with threads.
  EXPECT_GT(r40.ridge.value(), r1.ridge.value());
}

TEST(Roofline, LbmIsMemoryBoundOnEveryCatalogInstance) {
  // The paper: "LBM algorithms are memory-bound on nearly all
  // general-purpose hardware" — the assumption Eq. 4 rests on. Verify it
  // for our kernel's measured arithmetic intensity on every system.
  const auto geo = geometry::make_cylinder({.radius = 6, .length = 32});
  const auto mesh = lbm::FluidMesh::build(geo.grid);
  const units::FlopsPerByte intensity =
      core::arithmetic_intensity(mesh, lbm::KernelConfig{});
  EXPECT_GT(intensity.value(), 0.5);
  EXPECT_LT(intensity.value(), 3.0);  // ~1.3 flops/byte for D3Q19 BGK
  for (const auto& profile : cluster::default_catalog()) {
    const auto roofline =
        core::instance_roofline(profile, profile.cores_per_node);
    EXPECT_EQ(core::bound_for(roofline, intensity), core::Bound::kMemory)
        << profile.abbrev;
    EXPECT_GT(roofline.ridge.value(), intensity.value()) << profile.abbrev;
  }
}

TEST(Roofline, AdjustmentIsNoOpForMemoryBoundKernels) {
  // A self-consistent memory-bound task on TRC: 1e5 points move ~37.6 MB
  // per step against a ~1.4 GB/s per-task share (t_mem ~ 27 ms) while
  // needing only ~45 Mflops (t_compute ~ 2.6 ms at a 1/40 peak share).
  core::ModelPrediction pred;
  pred.t_mem = units::Seconds(2.7e-2);
  pred.t_comm = units::Seconds(1e-4);
  pred.step_seconds = units::Seconds(2.71e-2);
  pred.mflups = units::Mflups(100.0);
  const auto& trc = cluster::instance_by_abbrev("TRC");
  const auto roofline = core::instance_roofline(trc, 40);
  const auto adjusted = core::roofline_adjusted(
      pred, roofline, units::Flops(4.5e7), 1.0 / 40.0);
  EXPECT_DOUBLE_EQ(adjusted.t_mem.value(), pred.t_mem.value());
  EXPECT_DOUBLE_EQ(adjusted.mflups.value(), pred.mflups.value());
}

TEST(Roofline, AdjustmentBindsForComputeHeavyWork) {
  core::ModelPrediction pred;
  pred.t_mem = units::Seconds(1e-6);  // tiny memory term
  pred.t_comm = units::Seconds(0.0);
  pred.step_seconds = units::Seconds(1e-6);
  pred.mflups = units::Mflups(100.0);
  const auto& trc = cluster::instance_by_abbrev("TRC");
  const auto roofline = core::instance_roofline(trc, 40);
  // A hypothetical compute-dominated task: 1e12 flops.
  const auto adjusted =
      core::roofline_adjusted(pred, roofline, units::Flops(1e12), 1.0);
  EXPECT_GT(adjusted.t_mem.value(), pred.t_mem.value() * 100.0);
  EXPECT_LT(adjusted.mflups.value(), pred.mflups.value());
}

TEST(PointFlops, BoundaryPointsSkipRelaxation) {
  EXPECT_GT(lbm::point_flops(lbm::PointType::kBulk),
            lbm::point_flops(lbm::PointType::kInlet));
  EXPECT_DOUBLE_EQ(lbm::point_flops(lbm::PointType::kWall),
                   lbm::point_flops(lbm::PointType::kBulk));
}

TEST(HaloChannels, MatchCommGraphEndpoints) {
  // The distributed solver's message channels must connect exactly the
  // task pairs the communication graph predicts.
  const auto geo = geometry::make_cylinder({.radius = 5, .length = 30});
  const auto mesh = lbm::FluidMesh::build(geo.grid);
  const auto part = decomp::make_partition(mesh, 6, decomp::Strategy::kRcb);
  lbm::SolverParams params;
  harvey::DistributedSolver dist(mesh, part, params, std::span(geo.inlets));
  const auto graph = decomp::build_comm_graph(mesh, part);
  EXPECT_EQ(dist.channel_count(),
            static_cast<index_t>(graph.messages.size()));
  // Whole-row ghosts move at least as many bytes as link-level counting.
  lbm::KernelConfig config{};
  real_t link_bytes = 0.0;
  for (const auto& m : graph.messages) link_bytes += m.bytes(config);
  EXPECT_GE(dist.bytes_per_exchange(), link_bytes);
  EXPECT_GT(dist.bytes_per_exchange(), 0.0);
}

}  // namespace
}  // namespace hemo
