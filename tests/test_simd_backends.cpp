// Bit-identity and dispatch contract of the multi-backend SIMD layer.
//
// Every compiled-in, CPU-supported backend must produce *bit-identical*
// solver state to the scalar backend at one thread, for every kernel
// variant and physics toggle: the vector kernels execute the identical
// per-point IEEE-754 operation sequence (lbm/simd_tile.hpp), thread
// partitions only change which thread processes which point, and within a
// step no point reads a location another point writes. These tests assert
// that exhaustively — backends x threads {1, 2, 8} x {AB, AA} x
// {AoS, SoA} x {float, double} x {plain, LES, pulsatile} — plus the
// resolution rules (explicit > HEMO_SIMD env > widest detected) and
// checkpoint portability across backends.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "geometry/generators.hpp"
#include "lbm/mesh.hpp"
#include "lbm/simd.hpp"
#include "lbm/solver.hpp"

namespace hemo::lbm {
namespace {

TEST(SimdDispatch, CompiledBackendsAlwaysContainScalar) {
  const auto compiled = simd::compiled_backends();
  ASSERT_FALSE(compiled.empty());
  EXPECT_NE(std::find(compiled.begin(), compiled.end(), Backend::kScalar),
            compiled.end());
  // Widest-first order ends at the scalar fallback.
  EXPECT_EQ(compiled.back(), Backend::kScalar);
}

TEST(SimdDispatch, DetectedIsSubsetOfCompiledAndCpuSupported) {
  const auto compiled = simd::compiled_backends();
  for (const Backend b : simd::detected_backends()) {
    EXPECT_NE(std::find(compiled.begin(), compiled.end(), b), compiled.end())
        << to_string(b);
    EXPECT_TRUE(simd::cpu_supports(b)) << to_string(b);
  }
}

TEST(SimdDispatch, ParseRoundTripsEveryName) {
  for (const Backend b :
       {Backend::kAuto, Backend::kScalar, Backend::kSSE2, Backend::kAVX2,
        Backend::kAVX512, Backend::kNEON}) {
    const auto parsed = simd::parse_backend(to_string(b));
    ASSERT_TRUE(parsed.has_value()) << to_string(b);
    EXPECT_EQ(*parsed, b);
  }
  EXPECT_EQ(simd::parse_backend("AVX2"), Backend::kAVX2);  // case-blind
  EXPECT_FALSE(simd::parse_backend("avx9000").has_value());
  EXPECT_FALSE(simd::parse_backend("").has_value());
}

TEST(SimdDispatch, ResolutionPrecedence) {
  // Explicit request wins (scalar is always available).
  EXPECT_EQ(simd::resolve_backend(Backend::kScalar), Backend::kScalar);
  // kAuto with the environment variable set follows the environment.
  ::setenv("HEMO_SIMD", "scalar", 1);
  EXPECT_EQ(simd::resolve_backend(Backend::kAuto), Backend::kScalar);
  ::setenv("HEMO_SIMD", "bogus", 1);
  EXPECT_THROW((void)simd::resolve_backend(Backend::kAuto), PreconditionError);
  ::unsetenv("HEMO_SIMD");
  // kAuto without the environment variable takes the widest detected
  // backend (never silently something unsupported).
  const auto detected = simd::detected_backends();
  EXPECT_EQ(simd::resolve_backend(Backend::kAuto), detected.front());
}

TEST(SimdDispatch, TileKernelExistsForEveryCompiledBackend) {
  for (const Backend b : simd::compiled_backends()) {
    for (const bool les : {false, true}) {
      for (const bool nt : {false, true}) {
        EXPECT_NE(simd::tile_kernel<float>(b, les, nt), nullptr)
            << to_string(b);
        EXPECT_NE(simd::tile_kernel<double>(b, les, nt), nullptr)
            << to_string(b);
      }
    }
  }
}

TEST(SimdDispatch, LanesMatchVectorWidths) {
  EXPECT_EQ(simd::lanes(Backend::kScalar, 4), 1);
  EXPECT_EQ(simd::lanes(Backend::kScalar, 8), 1);
  EXPECT_EQ(simd::lanes(Backend::kSSE2, 4), 4);
  EXPECT_EQ(simd::lanes(Backend::kAVX2, 8), 4);
  EXPECT_EQ(simd::lanes(Backend::kAVX512, 4), 16);
  EXPECT_EQ(simd::lanes(Backend::kNEON, 8), 2);
}

// ---- Solver-level bit identity ------------------------------------------

enum class Variant { kPlain, kLes, kPulsatile };

const char* variant_name(Variant v) {
  switch (v) {
    case Variant::kPlain: return "plain";
    case Variant::kLes: return "les";
    case Variant::kPulsatile: return "pulsatile";
  }
  return "?";
}

geometry::Geometry make_geometry(Variant v) {
  auto geo = geometry::make_cylinder({.radius = 4, .length = 16});
  if (v == Variant::kPulsatile) {
    for (auto& inlet : geo.inlets) {
      inlet.pulse_amplitude = 0.4;
      inlet.pulse_period = 10.0;
    }
  }
  return geo;
}

/// One shared mesh: the grid is identical for every variant (only inlet
/// parameters differ), and the solver never mutates it.
const FluidMesh& shared_mesh() {
  static const FluidMesh mesh =
      FluidMesh::build(make_geometry(Variant::kPlain).grid);
  return mesh;
}

SolverParams make_params(Variant v, Layout layout, Propagation prop,
                         Backend backend, index_t threads) {
  SolverParams params;
  params.kernel.layout = layout;
  params.kernel.propagation = prop;
  params.kernel.path = KernelPath::kSegmented;
  params.kernel.backend = backend;
  params.num_threads = threads;
  if (v == Variant::kLes) params.smagorinsky_cs = 0.14;
  return params;
}

/// Canonical state after `steps` (odd, AA mid-parity) plus 4 more (even).
template <typename T>
std::pair<std::vector<T>, std::vector<T>> run_states(
    Variant v, Layout layout, Propagation prop, Backend backend,
    index_t threads) {
  const auto geo = make_geometry(v);
  Solver<T> solver(shared_mesh(),
                   make_params(v, layout, prop, backend, threads),
                   std::span(geo.inlets));
  solver.run(5);
  std::vector<T> odd = solver.export_state();
  solver.run(4);
  return {std::move(odd), solver.export_state()};
}

/// Scalar one-thread baseline, computed once per variant tuple.
template <typename T>
const std::pair<std::vector<T>, std::vector<T>>& baseline(
    Variant v, Layout layout, Propagation prop) {
  using Key = std::tuple<Variant, Layout, Propagation>;
  static std::map<Key, std::pair<std::vector<T>, std::vector<T>>> cache;
  auto [it, fresh] = cache.try_emplace(Key{v, layout, prop});
  if (fresh) {
    it->second = run_states<T>(v, layout, prop, Backend::kScalar, 1);
  }
  return it->second;
}

template <typename T>
std::size_t count_bit_mismatches(const std::vector<T>& a,
                                 const std::vector<T>& b) {
  EXPECT_EQ(a.size(), b.size());
  std::size_t mismatches = 0;
  for (std::size_t k = 0; k < a.size(); ++k) {
    // Bit comparison, not ==: distinguishes -0.0 / NaN patterns.
    if (std::memcmp(&a[k], &b[k], sizeof(T)) != 0) ++mismatches;
  }
  return mismatches;
}

template <typename T>
void expect_matches_scalar(Variant v, Layout layout, Propagation prop,
                           Backend backend, index_t threads) {
  const auto& ref = baseline<T>(v, layout, prop);
  const auto got = run_states<T>(v, layout, prop, backend, threads);
  EXPECT_EQ(count_bit_mismatches(ref.first, got.first), 0u)
      << variant_name(v) << " " << to_string(prop) << " "
      << to_string(layout) << " " << to_string(backend) << " threads="
      << threads << " diverged at the odd checkpoint";
  EXPECT_EQ(count_bit_mismatches(ref.second, got.second), 0u)
      << variant_name(v) << " " << to_string(prop) << " "
      << to_string(layout) << " " << to_string(backend) << " threads="
      << threads << " diverged at the even checkpoint";
}

class SimdBackendBitIdentity
    : public ::testing::TestWithParam<std::tuple<Backend, index_t>> {};

TEST_P(SimdBackendBitIdentity, MatchesScalarSingleThreadEverywhere) {
  const auto [backend, threads] = GetParam();
  if (!simd::cpu_supports(backend) ||
      simd::tile_kernel<float>(backend, false, false) == nullptr) {
    GTEST_SKIP() << to_string(backend) << " not available on this host";
  }
  for (const Variant v :
       {Variant::kPlain, Variant::kLes, Variant::kPulsatile}) {
    for (const Layout layout : {Layout::kAoS, Layout::kSoA}) {
      for (const Propagation prop : {Propagation::kAB, Propagation::kAA}) {
        expect_matches_scalar<float>(v, layout, prop, backend, threads);
        expect_matches_scalar<double>(v, layout, prop, backend, threads);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, SimdBackendBitIdentity,
    ::testing::Combine(::testing::Values(Backend::kSSE2, Backend::kAVX2,
                                         Backend::kAVX512, Backend::kNEON),
                       ::testing::Values(index_t{1}, index_t{2}, index_t{8})),
    [](const auto& info) {
      return to_string(std::get<0>(info.param)) + "_t" +
             std::to_string(std::get<1>(info.param));
    });

TEST(SimdBackends, EffectiveBackendIsScalarOffTheSegmentedSoaPath) {
  const auto geo = make_geometry(Variant::kPlain);
  // AoS: no unit-stride direction streams, so even the widest request
  // runs (and reports) scalar.
  SolverParams aos = make_params(Variant::kPlain, Layout::kAoS,
                                 Propagation::kAB, Backend::kAuto, 1);
  Solver<double> aos_solver(shared_mesh(), aos, std::span(geo.inlets));
  EXPECT_EQ(aos_solver.backend(), Backend::kScalar);
  // Reference path: same.
  SolverParams ref = make_params(Variant::kPlain, Layout::kSoA,
                                 Propagation::kAB, Backend::kAuto, 1);
  ref.kernel.path = KernelPath::kReference;
  Solver<double> ref_solver(shared_mesh(), ref, std::span(geo.inlets));
  EXPECT_EQ(ref_solver.backend(), Backend::kScalar);
  // Segmented SoA resolves the request for real.
  SolverParams soa = make_params(Variant::kPlain, Layout::kSoA,
                                 Propagation::kAB, Backend::kAuto, 1);
  Solver<double> soa_solver(shared_mesh(), soa, std::span(geo.inlets));
  EXPECT_EQ(soa_solver.backend(), simd::detected_backends().front());
  EXPECT_EQ(soa_solver.threads(), 1);
}

TEST(SimdBackends, CheckpointsArePortableAcrossBackends) {
  // A state exported under one backend must restore and continue under
  // any other backend to the bit — checkpoints carry no backend imprint.
  const auto geo = make_geometry(Variant::kPlain);
  for (const Propagation prop : {Propagation::kAB, Propagation::kAA}) {
    SolverParams scalar_params = make_params(
        Variant::kPlain, Layout::kSoA, prop, Backend::kScalar, 1);
    Solver<double> scalar(shared_mesh(), scalar_params,
                          std::span(geo.inlets));
    scalar.run(6);
    const std::vector<double> snapshot = scalar.export_state();
    scalar.run(4);
    const std::vector<double> expected = scalar.export_state();

    for (const Backend b : simd::detected_backends()) {
      SolverParams params =
          make_params(Variant::kPlain, Layout::kSoA, prop, b, 1);
      Solver<double> other(shared_mesh(), params, std::span(geo.inlets));
      other.restore_state(snapshot, 6);
      other.run(4);
      EXPECT_EQ(count_bit_mismatches(expected, other.export_state()), 0u)
          << to_string(prop) << " restored into " << to_string(b);
    }
  }
}

}  // namespace
}  // namespace hemo::lbm
