// Tests for the campaign scheduler & concurrent execution engine:
// placement against bounded capacity, the overrun-guard requeue path, spot
// preemption with checkpoint/restart resume, mid-campaign refinement, and
// the determinism contract (same seed => byte-identical report, any worker
// count).
#include <gtest/gtest.h>

#include <memory>

#include "sched/executor.hpp"
#include "sched/guard.hpp"
#include "sched/report.hpp"
#include "sched/scheduler.hpp"

namespace hemo::sched {
namespace {

std::vector<const cluster::InstanceProfile*> small_profiles() {
  return {&cluster::instance_by_abbrev("CSP-1"),
          &cluster::instance_by_abbrev("CSP-2 Small")};
}

SchedulerConfig small_config() {
  SchedulerConfig config;
  config.core_counts = {8, 16, 32};
  return config;
}

std::unique_ptr<CampaignScheduler> make_scheduler(
    SchedulerConfig config,
    std::vector<const cluster::InstanceProfile*> profiles = small_profiles()) {
  auto scheduler =
      std::make_unique<CampaignScheduler>(std::move(profiles), config);
  const std::vector<index_t> cal_counts = {2, 4, 8, 16};
  scheduler->register_workload(
      "cylinder", geometry::make_cylinder({.radius = 10, .length = 80}),
      cal_counts);
  return scheduler;
}

CampaignJobSpec cylinder_job(index_t id, index_t timesteps) {
  CampaignJobSpec spec;
  spec.id = id;
  spec.geometry = "cylinder";
  spec.timesteps = timesteps;
  return spec;
}

TEST(SchedPlacement, RespectsBoundedPoolCapacity) {
  auto scheduler = make_scheduler(small_config());
  const CampaignJobSpec spec = cylinder_job(1, 10000);
  PlacementRequest request;
  request.spec = &spec;
  request.remaining_steps = spec.timesteps;

  const auto first = scheduler->place(request);
  ASSERT_EQ(first.kind, PlacementDecision::Kind::kPlaced);
  EXPECT_GE(first.placement.n_nodes, 1);
  EXPECT_GT(first.placement.predicted_seconds.value(), 0.0);
  EXPECT_GT(first.placement.predicted_mflups.value(), 0.0);

  // Fill both pools completely: the same job must now wait, not fail.
  Placement all_csp1;
  all_csp1.instance = "CSP-1";
  all_csp1.n_nodes = scheduler->free_nodes("CSP-1");
  scheduler->reserve(all_csp1);
  Placement all_small;
  all_small.instance = "CSP-2 Small";
  all_small.n_nodes = scheduler->free_nodes("CSP-2 Small");
  scheduler->reserve(all_small);

  const auto blocked = scheduler->place(request);
  EXPECT_EQ(blocked.kind, PlacementDecision::Kind::kWait);

  scheduler->release(all_csp1);
  scheduler->release(all_small);
  const auto again = scheduler->place(request);
  EXPECT_EQ(again.kind, PlacementDecision::Kind::kPlaced);
}

TEST(SchedPlacement, ImpossibleConstraintsAreInfeasible) {
  auto scheduler = make_scheduler(small_config());
  CampaignJobSpec spec = cylinder_job(1, 100000);
  // No option's guard ceiling fits this budget.
  spec.budget_dollars = units::Dollars(1e-6);
  PlacementRequest request;
  request.spec = &spec;
  request.remaining_steps = spec.timesteps;
  request.remaining_budget = spec.budget_dollars;
  const auto decision = scheduler->place(request);
  EXPECT_EQ(decision.kind, PlacementDecision::Kind::kInfeasible);
  EXPECT_FALSE(decision.reason.empty());
}

TEST(SchedEngine, RejectsZeroStepJobs) {
  auto scheduler = make_scheduler(small_config());
  CampaignEngine engine(*scheduler, EngineConfig{});
  EXPECT_THROW((void)engine.run({cylinder_job(1, 0)}), PreconditionError);
}

// Acceptance (a): a job whose simulated runtime exceeds the model
// prediction by more than the tolerance is hard-stopped by the guard and
// requeued; the refreshed (refined) prediction lets the requeued attempt
// finish from its checkpoint.
TEST(SchedEngine, OverrunGuardKillsAndRequeuesJob) {
  SchedulerConfig config = small_config();
  config.pilot_steps = 0;  // cold model: raw predictions overshoot by the
                           // hidden efficiency factor, far past 10 %
  config.guard_tolerance = 0.10;
  auto scheduler = make_scheduler(config);

  EngineConfig engine_config;
  engine_config.n_workers = 2;
  engine_config.seed = 7;
  CampaignEngine engine(*scheduler, engine_config);
  const auto report = engine.run({cylinder_job(1, 20000)});

  ASSERT_EQ(report.jobs.size(), 1u);
  const JobReportRow& job = report.jobs.front();
  EXPECT_EQ(job.state, JobState::kCompleted);
  EXPECT_GE(job.overruns, 1);
  EXPECT_GE(job.attempts, 2);
  EXPECT_GE(report.total_requeues, 1);
  // The requeued attempt was placed with the refreshed model: the tracker
  // learned from the killed attempt's measurement.
  EXPECT_GT(scheduler->tracker().size(), 0);
  EXPECT_LT(scheduler->tracker().correction_factor(), 1.0);
}

// Acceptance (b): a preempted spot job resumes from its checkpoint and
// still completes the full step count, paying the preemption losses.
TEST(SchedEngine, SpotJobResumesFromCheckpointAndCompletes) {
  SchedulerConfig config = small_config();
  config.guard_tolerance = 0.50;  // isolate preemption from the guard
  config.spot.preemptions_per_hour = units::PerHour(40.0);
  auto scheduler = make_scheduler(config);

  EngineConfig engine_config;
  engine_config.n_workers = 2;
  engine_config.seed = 11;
  engine_config.max_preemptions = 16;
  CampaignEngine engine(*scheduler, engine_config);

  CampaignJobSpec spec = cylinder_job(1, 400000);
  spec.allow_spot = true;
  const auto report = engine.run({spec});

  ASSERT_EQ(report.jobs.size(), 1u);
  const JobReportRow& job = report.jobs.front();
  EXPECT_EQ(job.state, JobState::kCompleted);
  EXPECT_TRUE(job.spot);
  EXPECT_GE(job.preemptions, 1);
  EXPECT_GT(job.dollars.value(), 0.0);
}

// The same preemption stream replayed directly through simulate_attempt:
// lost chunks are redone (compute covers every completed step exactly
// once) and the preemption losses appear in the occupancy, not the
// productive compute.
TEST(SchedGuard, AttemptAccountsPreemptionLosses) {
  auto scheduler = make_scheduler(small_config());
  const CampaignJobSpec spec = cylinder_job(1, 100000);
  PlacementRequest request;
  request.spec = &spec;
  request.remaining_steps = spec.timesteps;
  const auto decision = scheduler->place(request);
  ASSERT_EQ(decision.kind, PlacementDecision::Kind::kPlaced);

  AttemptContext ctx;
  ctx.plan = &scheduler->plan_for("cylinder", decision.placement.instance,
                                  decision.placement.n_tasks);
  ctx.profile = &scheduler->profile_for(decision.placement.instance);
  ctx.placement = decision.placement;
  ctx.placement.spot = true;
  ctx.guard.predicted_seconds = decision.placement.predicted_seconds * 10.0;
  ctx.steps = spec.timesteps;
  ctx.seed = 123;
  ctx.spot.preemptions_per_hour = units::PerHour(60.0);
  ctx.max_preemptions = 64;

  const AttemptResult result = simulate_attempt(ctx);
  EXPECT_EQ(result.steps_done, spec.timesteps);
  EXPECT_FALSE(result.overrun_aborted);
  EXPECT_GE(result.preemptions, 1);
  // Occupancy strictly exceeds productive compute: lost partial chunks
  // plus one restart overhead per preemption.
  EXPECT_GT(result.sim_seconds.value(), result.compute_seconds.value());
  EXPECT_GT((result.sim_seconds - result.compute_seconds).value(),
            static_cast<real_t>(result.preemptions) *
                ctx.spot.restart_overhead_s.value());
}

TEST(SchedGuard, ResolutionScalingPreservesNoiseAndBaseCase) {
  auto scheduler = make_scheduler(small_config());
  const auto& plan = scheduler->plan_for("cylinder", "CSP-1", 16);
  const cluster::VirtualCluster vc(scheduler->profile_for("CSP-1"));
  const auto result = vc.execute(plan, 100, {1, 12, 3});
  EXPECT_DOUBLE_EQ(scaled_step_seconds(result, 1.0).value(),
                   result.step_seconds.value());
  // 8x the points: memory term x8, halo surface x4 — the scaled step lies
  // strictly between those bounds.
  const units::Seconds scaled = scaled_step_seconds(result, 8.0);
  EXPECT_GT(scaled.value(), 4.0 * result.step_seconds.value());
  EXPECT_LT(scaled.value(), 8.0 * result.step_seconds.value() + 1e-12);
}

// Acceptance (c): two runs of a 20-job concurrent campaign with the same
// seed produce byte-identical reports — and the worker count does not
// matter either, because campaign time is virtual and attempts are pure.
TEST(SchedEngine, TwentyJobCampaignIsDeterministic) {
  const auto run_campaign = [](index_t n_workers) {
    SchedulerConfig config = small_config();
    config.spot.preemptions_per_hour = units::PerHour(10.0);
    auto scheduler = make_scheduler(config);
    EngineConfig engine_config;
    engine_config.n_workers = n_workers;
    engine_config.seed = 2026;
    CampaignEngine engine(*scheduler, engine_config);

    std::vector<CampaignJobSpec> jobs;
    for (index_t i = 0; i < 20; ++i) {
      CampaignJobSpec spec = cylinder_job(i + 1, 20000 + 7000 * (i % 4));
      spec.allow_spot = (i % 3 == 0);
      jobs.push_back(spec);
    }
    return engine.run(jobs).to_csv();
  };

  const std::string a = run_campaign(4);
  const std::string b = run_campaign(4);
  EXPECT_EQ(a, b) << "same seed, same worker count must be byte-identical";
  const std::string c = run_campaign(1);
  EXPECT_EQ(a, c) << "worker count must not affect the report";
}

// The mid-campaign refinement loop measurably improves predictions: the
// late half of the error trajectory is tighter than the early half.
TEST(SchedEngine, RefinementTightensPredictionsOverCampaign) {
  SchedulerConfig config = small_config();
  config.pilot_steps = 0;  // start cold so there is something to learn
  config.guard_tolerance = 0.60;  // let early mispredictions run through
  // A single three-node pool throttles the first wave, so later waves are
  // placed only after completed measurements have refined the model.
  auto scheduler =
      make_scheduler(config, {&cluster::instance_by_abbrev("CSP-1")});
  EngineConfig engine_config;
  engine_config.n_workers = 4;
  engine_config.seed = 5;
  CampaignEngine engine(*scheduler, engine_config);

  std::vector<CampaignJobSpec> jobs;
  for (index_t i = 0; i < 12; ++i) {
    jobs.push_back(cylinder_job(i + 1, 20000));
  }
  const auto report = engine.run(jobs);
  EXPECT_EQ(report.n_completed, 12);
  ASSERT_GE(report.error_trajectory.size(), 4u);
  EXPECT_LT(report.late_error, report.early_error);
  // Cold-start error is the hidden-efficiency gap (tens of percent); the
  // refined predictions land within a few percent.
  EXPECT_LT(report.late_error, 0.10);
}

}  // namespace
}  // namespace hemo::sched
