// Tests for the telemetry subsystem (src/obs/): registry semantics and the
// near-zero disabled path, histogram quantiles, JSONL export, leveled-log
// parsing, Chrome-trace JSON structure, model-drift recording — and the
// headline acceptance property: the virtual-time trace of a seeded
// campaign is byte-identical for 1/2/8 workers, and enabling telemetry
// does not change the campaign's canonical CSV report.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>

#include "obs/drift.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sched/executor.hpp"
#include "sched/report.hpp"
#include "sched/scheduler.hpp"

namespace hemo::obs {
namespace {

/// The registry and recorder are process-global; each test claims them
/// fresh and leaves them disabled so suites stay order-independent.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::global().enable(false);
    MetricsRegistry::global().reset();
    TraceRecorder::global().enable(false);
    TraceRecorder::global().reset();
  }
  void TearDown() override { SetUp(); }
};

using MetricsRegistryTest = ObsTest;
using TraceRecorderTest = ObsTest;
using DriftTest = ObsTest;
using ObsCampaignTest = ObsTest;

TEST_F(MetricsRegistryTest, DisabledRegistryRecordsNothing) {
  MetricsRegistry& registry = MetricsRegistry::global();
  ASSERT_FALSE(registry.enabled());
  registry.add("c");
  registry.set("g", 3.0);
  registry.observe("h", 1.5);
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_TRUE(registry.to_jsonl().empty());
}

TEST_F(MetricsRegistryTest, CountersAccumulateAndGaugesOverwrite) {
  MetricsRegistry& registry = MetricsRegistry::global();
  registry.enable(true);
  registry.add("jobs_total");
  registry.add("jobs_total", 2.0);
  registry.set("factor", 0.5);
  registry.set("factor", 0.75);

  const auto snaps = registry.snapshot();
  ASSERT_EQ(snaps.size(), 2u);
  // Snapshot order is canonical (sorted by series key).
  EXPECT_EQ(snaps[0].name, "factor");
  EXPECT_EQ(snaps[0].kind, MetricKind::kGauge);
  EXPECT_DOUBLE_EQ(snaps[0].value, 0.75);
  EXPECT_EQ(snaps[1].name, "jobs_total");
  EXPECT_EQ(snaps[1].kind, MetricKind::kCounter);
  EXPECT_DOUBLE_EQ(snaps[1].value, 3.0);
}

TEST_F(MetricsRegistryTest, LabelsAreCanonicalizedIntoDistinctSeries) {
  MetricsRegistry& registry = MetricsRegistry::global();
  registry.enable(true);
  // Same labels in different order must land in one series...
  registry.add("placements", 1.0, {{"instance", "TRC"}, {"spot", "true"}});
  registry.add("placements", 1.0, {{"spot", "true"}, {"instance", "TRC"}});
  // ...different values in another.
  registry.add("placements", 1.0, {{"instance", "TRC"}, {"spot", "false"}});
  ASSERT_EQ(registry.size(), 2u);

  for (const auto& snap : registry.snapshot()) {
    if (snap.key() == "placements{instance=TRC,spot=true}") {
      EXPECT_DOUBLE_EQ(snap.value, 2.0);
    } else {
      EXPECT_EQ(snap.key(), "placements{instance=TRC,spot=false}");
      EXPECT_DOUBLE_EQ(snap.value, 1.0);
    }
  }
}

TEST_F(MetricsRegistryTest, MismatchedKindReRegistrationThrows) {
  MetricsRegistry& registry = MetricsRegistry::global();
  registry.enable(true);
  registry.add("series");
  EXPECT_THROW(registry.set("series", 1.0), PreconditionError);
}

TEST_F(MetricsRegistryTest, HistogramTracksCountSumMinMaxAndQuantiles) {
  MetricsRegistry& registry = MetricsRegistry::global();
  registry.enable(true);
  for (int i = 1; i <= 100; ++i) {
    registry.observe("latency", static_cast<real_t>(i));
  }
  const auto snaps = registry.snapshot();
  ASSERT_EQ(snaps.size(), 1u);
  const HistogramData& h = snaps[0].histogram;
  EXPECT_EQ(h.count, 100u);
  EXPECT_DOUBLE_EQ(h.sum, 5050.0);
  EXPECT_DOUBLE_EQ(h.min, 1.0);
  EXPECT_DOUBLE_EQ(h.max, 100.0);
  // Fixed 1-2-5 buckets give interpolated quantiles: coarse, but they
  // must be monotone, clamped to the observed range, and near the truth.
  const real_t p50 = h.quantile(0.50);
  const real_t p90 = h.quantile(0.90);
  const real_t p99 = h.quantile(0.99);
  EXPECT_GE(p50, h.min);
  EXPECT_LE(p99, h.max);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_NEAR(p50, 50.0, 25.0);
  EXPECT_NEAR(p99, 99.0, 10.0);
}

TEST_F(MetricsRegistryTest, JsonlExportIsOneObjectPerSeries) {
  MetricsRegistry& registry = MetricsRegistry::global();
  registry.enable(true);
  registry.add("a_total", 2.0, {{"k", "v"}});
  registry.observe("b_seconds", 0.25);
  const std::string jsonl = registry.to_jsonl();
  EXPECT_NE(jsonl.find("{\"name\":\"a_total\",\"labels\":{\"k\":\"v\"},"
                       "\"type\":\"counter\",\"value\":2}"),
            std::string::npos);
  EXPECT_NE(jsonl.find("\"name\":\"b_seconds\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"type\":\"histogram\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"count\":1"), std::string::npos);
  EXPECT_NE(jsonl.find("\"p99\":"), std::string::npos);
  // Exactly one line per series, each a complete object.
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 2);
}

TEST(LogLevelTest, ParsesNamesDigitsAndFallsBack) {
  EXPECT_EQ(parse_log_level("error", LogLevel::kInfo), LogLevel::kError);
  EXPECT_EQ(parse_log_level("warn", LogLevel::kInfo), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("info", LogLevel::kError), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("debug", LogLevel::kInfo), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("0", LogLevel::kInfo), LogLevel::kError);
  EXPECT_EQ(parse_log_level("3", LogLevel::kInfo), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level(nullptr, LogLevel::kWarn), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("", LogLevel::kWarn), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("verbose", LogLevel::kError), LogLevel::kError);
}

TEST_F(TraceRecorderTest, DisabledRecorderIgnoresEvents) {
  TraceRecorder& trace = TraceRecorder::global();
  trace.virtual_span("s", "c", 1, units::Seconds(0.0), units::Seconds(1.0));
  trace.virtual_instant("i", "c", 1, units::Seconds(0.5));
  { const auto span = trace.wall_span("w", "c"); }
  EXPECT_EQ(trace.virtual_event_count(), 0u);
}

TEST_F(TraceRecorderTest, ChromeJsonHasSpansInstantsAndMetadata) {
  TraceRecorder& trace = TraceRecorder::global();
  trace.enable(true);
  trace.virtual_span("attempt", "sched", 3, units::Seconds(1.0),
                     units::Seconds(2.5), {{"instance", "TRC"}});
  trace.virtual_instant("preemption", "fault", 3, units::Seconds(1.5));
  { const auto span = trace.wall_span("stream", "microbench"); }

  const std::string json = trace.to_chrome_json();
  EXPECT_EQ(json.find("{\"traceEvents\":[\n"), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // Both clock domains are named processes.
  EXPECT_NE(json.find("\"args\":{\"name\":\"campaign (virtual time)\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"wall clock\"}"),
            std::string::npos);
  // Complete span: phase X, microsecond ts/dur, job id as tid.
  EXPECT_NE(
      json.find("{\"name\":\"attempt\",\"cat\":\"sched\",\"ph\":\"X\","
                "\"pid\":1,\"tid\":3,\"ts\":1000000.000,"
                "\"dur\":1500000.000,\"args\":{\"instance\":\"TRC\"}}"),
      std::string::npos);
  // Instant: phase i with thread scope.
  EXPECT_NE(json.find("{\"name\":\"preemption\",\"cat\":\"fault\","
                      "\"ph\":\"i\",\"pid\":1,\"tid\":3,"
                      "\"ts\":1500000.000,\"s\":\"t\"}"),
            std::string::npos);

  // The virtual-only export drops the wall span and its process.
  const std::string virtual_only = trace.to_chrome_json(false);
  EXPECT_EQ(virtual_only.find("stream"), std::string::npos);
  EXPECT_EQ(virtual_only.find("wall clock"), std::string::npos);
  EXPECT_NE(virtual_only.find("\"name\":\"attempt\""), std::string::npos);
}

TEST_F(TraceRecorderTest, BackwardsVirtualSpanIsRejected) {
  TraceRecorder& trace = TraceRecorder::global();
  trace.enable(true);
  EXPECT_THROW(trace.virtual_span("s", "c", 1, units::Seconds(2.0),
                                  units::Seconds(1.0)),
               PreconditionError);
}

TEST_F(DriftTest, RecordsCounterAndErrorHistogramsPerRound) {
  MetricsRegistry& registry = MetricsRegistry::global();
  registry.enable(true);

  DriftSample sample;
  sample.workload = "cylinder";
  sample.instance = "TRC";
  sample.round = 0;
  sample.predicted_mflups = 110.0;
  sample.measured_mflups = 100.0;
  sample.predicted_step_seconds = 0.9e-3;
  sample.actual_step_seconds = 1.0e-3;
  record_drift(registry, sample);

  bool saw_counter = false, saw_mflups = false, saw_step = false;
  for (const auto& snap : registry.snapshot()) {
    if (snap.name == "model_drift_samples_total") {
      saw_counter = true;
      EXPECT_DOUBLE_EQ(snap.value, 1.0);
    }
    if (snap.name == "model_drift_mflups_rel_error") {
      saw_mflups = true;
      EXPECT_EQ(snap.key(),
                "model_drift_mflups_rel_error{instance=TRC,round=0,"
                "workload=cylinder}");
      ASSERT_EQ(snap.histogram.count, 1u);
      // (110 - 100) / 100 = +0.10: the model overpredicted.
      EXPECT_NEAR(snap.histogram.sum, 0.10, 1e-12);
    }
    if (snap.name == "model_drift_step_time_rel_error") {
      saw_step = true;
      EXPECT_NEAR(snap.histogram.sum, -0.10, 1e-12);
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_mflups);
  EXPECT_TRUE(saw_step);
}

TEST_F(DriftTest, RoundLabelsAreBounded) {
  EXPECT_EQ(drift_round_label(0), "0");
  EXPECT_EQ(drift_round_label(3), "3");
  EXPECT_EQ(drift_round_label(4), "4-7");
  EXPECT_EQ(drift_round_label(7), "4-7");
  EXPECT_EQ(drift_round_label(8), "8+");
  EXPECT_EQ(drift_round_label(1000), "8+");
}

// ---------------------------------------------------------------------------
// Campaign-level acceptance: telemetry of a seeded campaign.

std::unique_ptr<sched::CampaignScheduler> make_scheduler() {
  sched::SchedulerConfig config;
  config.core_counts = {8, 16, 32};
  auto scheduler = std::make_unique<sched::CampaignScheduler>(
      std::vector<const cluster::InstanceProfile*>{
          &cluster::instance_by_abbrev("CSP-1"),
          &cluster::instance_by_abbrev("CSP-2 Small")},
      config);
  const std::vector<index_t> cal_counts = {2, 4, 8, 16};
  scheduler->register_workload(
      "cylinder", geometry::make_cylinder({.radius = 10, .length = 80}),
      cal_counts);
  return scheduler;
}

std::vector<sched::CampaignJobSpec> small_campaign() {
  std::vector<sched::CampaignJobSpec> jobs;
  for (index_t i = 0; i < 4; ++i) {
    sched::CampaignJobSpec spec;
    spec.id = i + 1;
    spec.geometry = "cylinder";
    spec.timesteps = 20000;
    spec.allow_spot = (i % 2 == 1);
    jobs.push_back(spec);
  }
  return jobs;
}

std::string run_traced_campaign(index_t n_workers, std::string* csv) {
  TraceRecorder::global().reset();
  MetricsRegistry::global().reset();
  auto scheduler = make_scheduler();
  sched::EngineConfig config;
  config.n_workers = n_workers;
  config.seed = 42;
  sched::CampaignEngine engine(*scheduler, config);
  const sched::CampaignReport report = engine.run(small_campaign());
  if (csv != nullptr) *csv = report.to_csv();
  return TraceRecorder::global().to_chrome_json(/*include_wall=*/false);
}

TEST_F(ObsCampaignTest, VirtualTraceIsByteIdenticalAcrossWorkerCounts) {
  TraceRecorder::global().enable(true);
  MetricsRegistry::global().enable(true);
  std::string baseline_trace, baseline_csv;
  baseline_trace = run_traced_campaign(1, &baseline_csv);
  EXPECT_GT(TraceRecorder::global().virtual_event_count(), 0u);
  for (const index_t n_workers : {2, 8}) {
    std::string csv;
    const std::string trace = run_traced_campaign(n_workers, &csv);
    EXPECT_EQ(trace, baseline_trace)
        << "virtual trace diverged at " << n_workers << " workers";
    EXPECT_EQ(csv, baseline_csv)
        << "campaign report diverged at " << n_workers << " workers";
  }
}

TEST_F(ObsCampaignTest, EnablingTelemetryDoesNotChangeTheReport) {
  std::string dark_csv;
  {
    // Telemetry fully disabled (the default production path).
    auto scheduler = make_scheduler();
    sched::EngineConfig config;
    config.seed = 42;
    sched::CampaignEngine engine(*scheduler, config);
    dark_csv = engine.run(small_campaign()).to_csv();
  }
  TraceRecorder::global().enable(true);
  MetricsRegistry::global().enable(true);
  std::string traced_csv;
  (void)run_traced_campaign(2, &traced_csv);
  EXPECT_EQ(traced_csv, dark_csv);
}

TEST_F(ObsCampaignTest, CampaignPopulatesSchedulerAndDriftMetrics) {
  TraceRecorder::global().enable(true);
  MetricsRegistry::global().enable(true);
  (void)run_traced_campaign(2, nullptr);

  bool saw_attempts = false, saw_place = false, saw_drift = false;
  bool saw_calibration = false;
  for (const auto& snap : MetricsRegistry::global().snapshot()) {
    if (snap.name == "campaign_attempts_total") saw_attempts = true;
    if (snap.name == "sched_place_total") saw_place = true;
    if (snap.name == "model_drift_mflups_rel_error") saw_drift = true;
    if (snap.name == "calibration_mem_breakpoint_threads") {
      saw_calibration = true;
    }
  }
  EXPECT_TRUE(saw_attempts);
  EXPECT_TRUE(saw_place);
  EXPECT_TRUE(saw_drift);
  EXPECT_TRUE(saw_calibration);
}

}  // namespace
}  // namespace hemo::obs
