// Unit tests for the util module: tables, CSV, RNG determinism.
#include <gtest/gtest.h>

#include <sstream>

#include "util/common.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace hemo {
namespace {

TEST(Require, ThrowsWithContext) {
  try {
    HEMO_REQUIRE(1 == 2, "math is broken");
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("math is broken"),
              std::string::npos);
  }
}

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 a(12345), b(12345);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next(), b.next());
  SplitMix64 c(12346);
  EXPECT_NE(SplitMix64(12345).next(), c.next());
}

TEST(HashSeed, OrderSensitive) {
  EXPECT_NE(hash_seed(1, 2), hash_seed(2, 1));
  EXPECT_EQ(hash_seed(1, 2, 3), hash_seed(1, 2, 3));
}

TEST(Xoshiro256, UniformInRange) {
  Xoshiro256 rng(99);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(3.0, 5.0);
    EXPECT_GE(u, 3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Xoshiro256, GaussianMomentsRoughlyStandard) {
  Xoshiro256 rng(7);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Xoshiro256, BelowStaysInRange) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 100; ++i) {
    const index_t v = rng.below(7);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 7);
  }
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t;
  t.set_header({"System", "MFLUPS"});
  t.add_row({"TRC", TextTable::num(39.04, 2)});
  t.add_row({"CSP-2 EC", TextTable::num(127.99, 2)});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("System"), std::string::npos);
  EXPECT_NE(out.find("39.04"), std::string::npos);
  EXPECT_NE(out.find("127.99"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2);
  // Header separator present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, NumFormatsIntegers) {
  EXPECT_EQ(TextTable::num(static_cast<index_t>(2048)), "2048");
  EXPECT_EQ(TextTable::num(3.14159, 3), "3.142");
}

TEST(CsvWriter, EscapesSpecialCells) {
  std::ostringstream oss;
  CsvWriter csv(oss);
  csv.row({"a", "b,c", "d\"e"});
  EXPECT_EQ(oss.str(), "a,\"b,c\",\"d\"\"e\"\n");
}

}  // namespace
}  // namespace hemo
