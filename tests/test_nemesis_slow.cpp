// Slow-tier nemesis sweeps (ctest label "slow"): the full seeded storm
// properties at CI depth — every storm preset, many generated schedules
// each, every one driven through worker counts {1,2,8} and replayed
// through the invariant checker — plus the checker self-test across
// several seeds. Tier-1 runs the same machinery at smoke depth
// (test_nemesis.cpp); this is the coverage sweep.
#include <gtest/gtest.h>

#include "nemesis/harness.hpp"

namespace hemo::nemesis {
namespace {

TEST(NemesisSweep, EveryStormPropertyHoldsAtDepth) {
  check::PropertyConfig config;
  config.seed = global_seed();
  config.cases = 15;
  for (const std::string& storm : storm_names()) {
    std::shared_ptr<NemesisFailure> failure;
    const check::PropertyResult result =
        nemesis_property(storm, config, &failure);
    std::string evidence = result.summary();
    if (failure) {
      evidence += '\n';
      evidence += failure->verdict.check.summary();
    }
    EXPECT_TRUE(result.passed) << evidence;
  }
}

TEST(NemesisSweep, SelfTestHoldsAcrossSeeds) {
  for (const std::uint64_t seed : {42ull, 7ull, 1234ull, 99ull}) {
    const SelfTestReport report = run_protocol_self_test(seed);
    EXPECT_TRUE(report.all_detected())
        << "seed " << seed << ":\n"
        << report.summary();
  }
}

}  // namespace
}  // namespace hemo::nemesis
