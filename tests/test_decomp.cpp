// Unit tests for the domain decomposition and the communication graph.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "decomp/comm_graph.hpp"
#include "decomp/partition.hpp"
#include "geometry/generators.hpp"
#include "lbm/access_counts.hpp"
#include "lbm/mesh.hpp"

namespace hemo::decomp {
namespace {

lbm::FluidMesh cylinder_mesh() {
  const auto geo = geometry::make_cylinder({.radius = 6, .length = 48});
  return lbm::FluidMesh::build(geo.grid);
}

class PartitionStrategyTest : public ::testing::TestWithParam<Strategy> {};

TEST_P(PartitionStrategyTest, CoversEveryPointExactlyOnce) {
  const auto mesh = cylinder_mesh();
  const Partition part = make_partition(mesh, 8, GetParam());
  EXPECT_EQ(part.n_tasks, 8);
  index_t total = 0;
  for (const auto& pts : part.points_of) {
    total += static_cast<index_t>(pts.size());
  }
  EXPECT_EQ(total, mesh.num_points());
  for (index_t p = 0; p < mesh.num_points(); ++p) {
    const auto t = part.task_of[static_cast<std::size_t>(p)];
    ASSERT_GE(t, 0);
    ASSERT_LT(t, 8);
    const auto& pts = part.points_of[static_cast<std::size_t>(t)];
    EXPECT_TRUE(std::binary_search(pts.begin(), pts.end(), p));
  }
}

TEST_P(PartitionStrategyTest, DeterministicAcrossCalls) {
  const auto mesh = cylinder_mesh();
  const Partition a = make_partition(mesh, 16, GetParam());
  const Partition b = make_partition(mesh, 16, GetParam());
  EXPECT_EQ(a.task_of, b.task_of);
}

TEST_P(PartitionStrategyTest, SingleTaskGetsEverything) {
  const auto mesh = cylinder_mesh();
  const Partition part = make_partition(mesh, 1, GetParam());
  EXPECT_EQ(part.max_points(), mesh.num_points());
  EXPECT_EQ(decomp::build_comm_graph(mesh, part).messages.size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, PartitionStrategyTest,
                         ::testing::Values(Strategy::kGrid, Strategy::kRcb,
                                           Strategy::kSlab),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(Partition, RcbBalancesPointCountsTightly) {
  const auto mesh = cylinder_mesh();
  const Partition part = make_partition(mesh, 12, Strategy::kRcb);
  // RCB splits at medians: max/min within a couple of points.
  EXPECT_LE(part.max_points() - part.min_points(), 2);
}

TEST(Partition, GridBalancesWorseThanRcbOnComplexGeometry) {
  const auto geo = geometry::make_cerebral({.depth = 4});
  const auto mesh = lbm::FluidMesh::build(geo.grid);
  const Partition grid = make_partition(mesh, 16, Strategy::kGrid);
  const Partition rcb = make_partition(mesh, 16, Strategy::kRcb);
  EXPECT_GT(grid.max_points(), rcb.max_points());
}

TEST(Partition, MeasuredImbalanceAtLeastOneAndGrows) {
  const auto mesh = cylinder_mesh();
  const lbm::KernelConfig config{};
  const real_t z2 = measured_imbalance(
      mesh, make_partition(mesh, 2, Strategy::kRcb), config);
  const real_t z32 = measured_imbalance(
      mesh, make_partition(mesh, 32, Strategy::kRcb), config);
  EXPECT_GE(z2, 1.0);
  EXPECT_GE(z32, 1.0);
  // Finer decompositions have proportionally more byte imbalance.
  EXPECT_GE(z32, z2 - 1e-9);
}

TEST(Partition, TaskBytesSumToSerialBytes) {
  const auto mesh = cylinder_mesh();
  const lbm::KernelConfig config{};
  const Partition part = make_partition(mesh, 8, Strategy::kRcb);
  const auto bytes = task_bytes_per_step(mesh, part, config);
  real_t sum = 0.0;
  for (real_t b : bytes) sum += b;
  EXPECT_NEAR(sum, lbm::serial_bytes_per_step(mesh, config), 1e-6);
}

TEST(Partition, RejectsInvalidTaskCounts) {
  const auto mesh = cylinder_mesh();
  EXPECT_THROW(make_partition(mesh, 0, Strategy::kRcb), PreconditionError);
  EXPECT_THROW(make_partition(mesh, mesh.num_points() + 1, Strategy::kRcb),
               PreconditionError);
}

TEST(MigrateBlock, MovesContiguousBlockAndPreservesInvariants) {
  const auto mesh = cylinder_mesh();
  const Partition part = make_partition(mesh, 4, Strategy::kSlab);
  const index_t before_from = static_cast<index_t>(part.points_of[1].size());
  const index_t before_to = static_cast<index_t>(part.points_of[2].size());
  const Partition next = migrate_block(part, 1, 2, 10);

  EXPECT_EQ(static_cast<index_t>(next.points_of[1].size()), before_from - 10);
  EXPECT_EQ(static_cast<index_t>(next.points_of[2].size()), before_to + 10);
  // Untouched tasks are untouched.
  EXPECT_EQ(next.points_of[0], part.points_of[0]);
  EXPECT_EQ(next.points_of[3], part.points_of[3]);
  // All per-task lists stay ascending and task_of stays consistent.
  index_t total = 0;
  for (index_t t = 0; t < next.n_tasks; ++t) {
    const auto& pts = next.points_of[static_cast<std::size_t>(t)];
    EXPECT_TRUE(std::is_sorted(pts.begin(), pts.end()));
    total += static_cast<index_t>(pts.size());
    for (index_t p : pts) {
      EXPECT_EQ(next.task_of[static_cast<std::size_t>(p)],
                static_cast<std::int32_t>(t));
    }
  }
  EXPECT_EQ(total, mesh.num_points());
  // The moved block is contiguous in the source's canonical order: the
  // block facing task 2 is the top end of task 1's range.
  for (index_t i = 0; i < 10; ++i) {
    EXPECT_EQ(next.points_of[2][static_cast<std::size_t>(i)],
              part.points_of[1]
                  [part.points_of[1].size() - 10 + static_cast<std::size_t>(i)]);
  }
}

TEST(MigrateBlock, MovesBottomEndWhenDestinationIsBelow) {
  const auto mesh = cylinder_mesh();
  const Partition part = make_partition(mesh, 4, Strategy::kSlab);
  const Partition next = migrate_block(part, 2, 1, 7);
  // Task 1 sits below task 2 in slab order, so the bottom end moves.
  for (index_t i = 0; i < 7; ++i) {
    EXPECT_EQ(next.points_of[1][next.points_of[1].size() - 7 +
                                static_cast<std::size_t>(i)],
              part.points_of[2][static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(next.points_of[2][0], part.points_of[2][7]);
}

TEST(MigrateBlock, RoundTripRestoresOriginalPartition) {
  const auto mesh = cylinder_mesh();
  const Partition part = make_partition(mesh, 3, Strategy::kSlab);
  const Partition there = migrate_block(part, 0, 1, 25);
  const Partition back = migrate_block(there, 1, 0, 25);
  EXPECT_EQ(back.task_of, part.task_of);
  for (index_t t = 0; t < part.n_tasks; ++t) {
    EXPECT_EQ(back.points_of[static_cast<std::size_t>(t)],
              part.points_of[static_cast<std::size_t>(t)]);
  }
}

TEST(MigrateBlock, RejectsInvalidArguments) {
  const auto mesh = cylinder_mesh();
  const Partition part = make_partition(mesh, 2, Strategy::kRcb);
  EXPECT_THROW(migrate_block(part, 0, 0, 1), PreconditionError);
  EXPECT_THROW(migrate_block(part, 0, 2, 1), PreconditionError);
  EXPECT_THROW(migrate_block(part, -1, 1, 1), PreconditionError);
  EXPECT_THROW(migrate_block(part, 0, 1, 0), PreconditionError);
  // Moving everything would empty the source.
  EXPECT_THROW(
      migrate_block(part, 0, 1,
                    static_cast<index_t>(part.points_of[0].size())),
      PreconditionError);
}

TEST(CommGraph, MessagesAreSymmetricInLinkCounts) {
  const auto mesh = cylinder_mesh();
  const Partition part = make_partition(mesh, 8, Strategy::kRcb);
  const CommGraph graph = build_comm_graph(mesh, part);
  ASSERT_FALSE(graph.messages.empty());
  // For every message from->to there is a reverse message with the same
  // link count (pull-scheme reciprocity).
  for (const Message& m : graph.messages) {
    bool found = false;
    for (const Message& r : graph.messages) {
      if (r.from == m.to && r.to == m.from) {
        EXPECT_EQ(r.link_count, m.link_count);
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(CommGraph, PerTaskTotalsMatchMessages) {
  const auto mesh = cylinder_mesh();
  const Partition part = make_partition(mesh, 6, Strategy::kSlab);
  const CommGraph graph = build_comm_graph(mesh, part);
  std::vector<index_t> sends(6, 0), links(6, 0);
  for (const Message& m : graph.messages) {
    ++sends[static_cast<std::size_t>(m.from)];
    links[static_cast<std::size_t>(m.from)] += m.link_count;
  }
  for (index_t t = 0; t < 6; ++t) {
    EXPECT_EQ(graph.per_task[static_cast<std::size_t>(t)].send_events,
              sends[static_cast<std::size_t>(t)]);
    EXPECT_EQ(graph.per_task[static_cast<std::size_t>(t)].send_links,
              links[static_cast<std::size_t>(t)]);
  }
}

TEST(CommGraph, SlabChainHasLinearNeighborStructure) {
  const auto mesh = cylinder_mesh();
  const Partition part = make_partition(mesh, 4, Strategy::kSlab);
  const CommGraph graph = build_comm_graph(mesh, part);
  // A 1-D chain: interior slabs talk to exactly 2 neighbors, ends to 1.
  EXPECT_EQ(graph.per_task[0].send_events, 1);
  EXPECT_EQ(graph.per_task[1].send_events, 2);
  EXPECT_EQ(graph.per_task[2].send_events, 2);
  EXPECT_EQ(graph.per_task[3].send_events, 1);
}

TEST(CommGraph, MessageBytesScaleWithPrecision) {
  const auto mesh = cylinder_mesh();
  const Partition part = make_partition(mesh, 4, Strategy::kRcb);
  const CommGraph graph = build_comm_graph(mesh, part);
  lbm::KernelConfig dbl{}, sgl{};
  sgl.precision = lbm::Precision::kSingle;
  EXPECT_DOUBLE_EQ(graph.max_total_bytes(dbl),
                   2.0 * graph.max_total_bytes(sgl));
}

TEST(CommGraph, CylinderCommunicatesMoreThanCerebral) {
  // The paper's core geometry observation: the compact cylinder exposes
  // much larger cut surfaces per point than the spread-out cerebral tree
  // (Section III-D).
  const auto cyl_geo = geometry::make_cylinder({.radius = 10, .length = 60});
  const auto cer_geo = geometry::make_cerebral({.depth = 5});
  const auto cyl = lbm::FluidMesh::build(cyl_geo.grid);
  const auto cer = lbm::FluidMesh::build(cer_geo.grid);
  // Comparable point counts (~19k vs ~22k); compare total halo links per
  // fluid point at two task counts.
  for (index_t n_tasks : {16, 64}) {
    const CommGraph gc =
        build_comm_graph(cyl, make_partition(cyl, n_tasks, Strategy::kRcb));
    const CommGraph ge =
        build_comm_graph(cer, make_partition(cer, n_tasks, Strategy::kRcb));
    auto links_per_point = [](const CommGraph& g, const lbm::FluidMesh& m) {
      index_t total = 0;
      for (const Message& msg : g.messages) total += msg.link_count;
      return static_cast<real_t>(total) /
             static_cast<real_t>(m.num_points());
    };
    EXPECT_GT(links_per_point(gc, cyl), 1.2 * links_per_point(ge, cer))
        << "n_tasks = " << n_tasks;
  }
}

}  // namespace
}  // namespace hemo::decomp
