// Race-detector nemesis storm stress (ctest label "tsan"): large fault
// storms through the real WorkerPool at 8 worker threads, with the
// protocol history tap and the obs:: trace recorder live. Under
// HEMO_SANITIZE=thread this drives the concurrent submit / settle /
// requeue / crash paths the protocol depends on; on a plain build the
// same determinism and invariant assertions hold.
#include <gtest/gtest.h>

#include "nemesis/harness.hpp"

namespace hemo::nemesis {
namespace {

TEST(NemesisStress, StormBarrageUnderEightWorkers) {
  Xoshiro256 rng(global_seed());
  for (const std::string& storm :
       {std::string("preemption_storm"), std::string("crash_storm"),
        std::string("mixed_storm")}) {
    for (int round = 0; round < 3; ++round) {
      NemesisSchedule schedule = gen_schedule(storm, rng);
      // Widen the campaign so eight workers actually run concurrently.
      const auto base = schedule.jobs;
      for (index_t copy = 1; copy < 3; ++copy) {
        for (const auto& job : base) {
          sched::CampaignJobSpec extra = job;
          extra.id = static_cast<index_t>(schedule.jobs.size()) + 1;
          schedule.jobs.push_back(std::move(extra));
        }
      }
      const NemesisVerdict verdict = run_nemesis(schedule);
      EXPECT_TRUE(verdict.passed)
          << storm << " round " << round << ": " << verdict.failure << "\n"
          << verdict.check.summary();
    }
  }
}

}  // namespace
}  // namespace hemo::nemesis
