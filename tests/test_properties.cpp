// Property-based tests: parameterized sweeps asserting invariants across
// the library's parameter spaces — solver stability over relaxation times,
// equilibrium positivity over velocity ranges, fit recovery over random
// parameter draws, decomposition invariants over geometries and task
// counts, and calibration fidelity over the whole instance catalog.
#include <gtest/gtest.h>

#include <cmath>

#include "core/calibration.hpp"
#include "decomp/comm_graph.hpp"
#include "fit/linear.hpp"
#include "fit/two_line.hpp"
#include "geometry/generators.hpp"
#include "lbm/access_counts.hpp"
#include "lbm/mesh.hpp"
#include "lbm/solver.hpp"
#include "util/rng.hpp"

namespace hemo {
namespace {

// ---------------------------------------------------------------- solver

class TauSweep : public ::testing::TestWithParam<double> {};

TEST_P(TauSweep, StableAndMassConservingInClosedBox) {
  const real_t tau = GetParam();
  geometry::VoxelGrid grid(7, 7, 7);
  for (index_t z = 0; z < 7; ++z) {
    for (index_t y = 0; y < 7; ++y) {
      for (index_t x = 0; x < 7; ++x) {
        grid.set(x, y, z, geometry::PointType::kBulk);
      }
    }
  }
  grid.classify_walls();
  const geometry::Geometry geo{"box", std::move(grid), {}};
  const lbm::FluidMesh mesh = lbm::FluidMesh::build(geo.grid);
  lbm::SolverParams params;
  params.tau = tau;
  params.body_force = {1e-6, 0.0, 0.0};  // gentle forcing to excite flow
  lbm::Solver<double> solver(mesh, params, {});
  const real_t mass0 = solver.total_mass();
  solver.run(100);
  EXPECT_NEAR(solver.total_mass(), mass0, mass0 * 1e-11) << "tau " << tau;
  for (index_t p = 0; p < mesh.num_points(); p += 13) {
    const auto m = solver.moments_at(p);
    EXPECT_TRUE(std::isfinite(m.rho)) << "tau " << tau;
    EXPECT_GT(m.rho, 0.0);
    EXPECT_LT(std::abs(m.ux) + std::abs(m.uy) + std::abs(m.uz), 0.3);
  }
}

INSTANTIATE_TEST_SUITE_P(RelaxationTimes, TauSweep,
                         ::testing::Values(0.55, 0.7, 0.9, 1.2, 1.8),
                         [](const auto& info) {
                           return "tau_" +
                                  std::to_string(static_cast<int>(
                                      info.param * 100));
                         });

class VelocitySweep : public ::testing::TestWithParam<double> {};

TEST_P(VelocitySweep, EquilibriumIsPositiveAndMomentExact) {
  const real_t u = GetParam();
  const real_t rho = 1.0;
  real_t sum = 0.0, momentum = 0.0;
  for (index_t q = 0; q < lbm::kQ; ++q) {
    const real_t feq = lbm::equilibrium<double>(q, rho, u, 0.0, 0.0);
    EXPECT_GT(feq, 0.0) << "direction " << q << " at u = " << u;
    sum += feq;
    momentum +=
        feq * static_cast<real_t>(
                  lbm::kD3Q19[static_cast<std::size_t>(q)].dx);
  }
  EXPECT_NEAR(sum, rho, 1e-12);
  EXPECT_NEAR(momentum, rho * u, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(LatticeVelocities, VelocitySweep,
                         ::testing::Values(-0.15, -0.05, 0.0, 0.05, 0.15),
                         [](const auto& info) {
                           return "u_" +
                                  std::to_string(static_cast<int>(
                                      (info.param + 1.0) * 100));
                         });

// ----------------------------------------------------------------- fits

TEST(FitProperties, TwoLineRecoveryOverRandomParameters) {
  Xoshiro256 rng(0xfeedULL);
  for (int trial = 0; trial < 12; ++trial) {
    fit::TwoLineModel truth;
    truth.a1 = rng.uniform(3000.0, 20000.0);
    truth.a2 = rng.uniform(-200.0, 1500.0);
    truth.a3 = rng.uniform(3.0, 20.0);
    std::vector<real_t> xs, ys;
    for (index_t n = 1; n <= 40; ++n) {
      xs.push_back(static_cast<real_t>(n));
      ys.push_back(truth(static_cast<real_t>(n)) *
                   (1.0 + 0.005 * rng.gaussian()));
    }
    const auto m = fit::fit_two_line(xs, ys);
    EXPECT_NEAR(m.a1, truth.a1, truth.a1 * 0.08) << "trial " << trial;
    EXPECT_NEAR(m.a3, truth.a3, 1.5) << "trial " << trial;
    // Predictions near the knee and at full node stay close.
    for (real_t x : {truth.a3, 40.0}) {
      EXPECT_NEAR(m(x), truth(x), std::abs(truth(x)) * 0.05)
          << "trial " << trial;
    }
  }
}

TEST(FitProperties, CommModelRecoveryOverRandomParameters) {
  Xoshiro256 rng(0xbeefULL);
  for (int trial = 0; trial < 12; ++trial) {
    const real_t b = rng.uniform(500.0, 8000.0);   // MB/s == B/us
    const real_t l = rng.uniform(0.5, 40.0);       // us
    std::vector<real_t> sizes, times;
    for (real_t m = 0.0; m <= 4e6; m = m == 0.0 ? 64.0 : m * 4.0) {
      sizes.push_back(m);
      times.push_back((m / b + l) * (1.0 + 0.01 * rng.gaussian()));
    }
    const auto fit_model = fit::fit_comm_model(sizes, times);
    EXPECT_NEAR(fit_model.bandwidth, b, b * 0.05) << "trial " << trial;
    EXPECT_NEAR(fit_model.latency, l, l * 0.05) << "trial " << trial;
  }
}

// ----------------------------------------------------- kernels/accounting

class KernelConfigSweep
    : public ::testing::TestWithParam<
          std::tuple<lbm::Layout, lbm::Propagation, lbm::Precision>> {};

TEST_P(KernelConfigSweep, TrafficDecreasesWithSolidLinks) {
  lbm::KernelConfig config;
  config.layout = std::get<0>(GetParam());
  config.propagation = std::get<1>(GetParam());
  config.precision = std::get<2>(GetParam());
  real_t prev = lbm::point_traffic(config, lbm::PointType::kWall, 0).total();
  for (index_t s = 1; s <= 12; ++s) {
    const real_t t =
        lbm::point_traffic(config, lbm::PointType::kWall, s).total();
    EXPECT_LT(t, prev) << "solid links " << s;
    prev = t;
  }
}

TEST_P(KernelConfigSweep, TraitsAreSane) {
  lbm::KernelConfig config;
  config.layout = std::get<0>(GetParam());
  config.propagation = std::get<1>(GetParam());
  config.precision = std::get<2>(GetParam());
  for (lbm::Unroll u : {lbm::Unroll::kYes, lbm::Unroll::kNo}) {
    config.unroll = u;
    const auto traits = lbm::kernel_traits(config);
    EXPECT_GT(traits.overhead_cycles_per_point, 0.0);
    EXPECT_GT(traits.bandwidth_efficiency, 0.0);
    EXPECT_LE(traits.bandwidth_efficiency, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, KernelConfigSweep,
    ::testing::Combine(
        ::testing::Values(lbm::Layout::kAoS, lbm::Layout::kSoA),
        ::testing::Values(lbm::Propagation::kAB, lbm::Propagation::kAA),
        ::testing::Values(lbm::Precision::kSingle,
                          lbm::Precision::kDouble)),
    [](const auto& info) {
      return lbm::to_string(std::get<1>(info.param)) + "_" +
             lbm::to_string(std::get<0>(info.param)) + "_" +
             lbm::to_string(std::get<2>(info.param));
    });

// ------------------------------------------------------------ decomp

class GeometryTaskSweep
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(GeometryTaskSweep, DecompositionInvariantsHold) {
  const std::string geo_name = std::get<0>(GetParam());
  const index_t n_tasks = std::get<1>(GetParam());
  geometry::Geometry geo =
      geo_name == "cylinder"
          ? geometry::make_cylinder({.radius = 7, .length = 40})
      : geo_name == "aorta"
          ? geometry::make_aorta({.vessel_radius = 6.0, .height = 80})
          : geometry::make_cerebral({.depth = 4});
  const lbm::FluidMesh mesh = lbm::FluidMesh::build(geo.grid);
  const auto part =
      decomp::make_partition(mesh, n_tasks, decomp::Strategy::kRcb);
  const auto graph = decomp::build_comm_graph(mesh, part);

  // Invariant 1: total send links == total recv links.
  index_t sends = 0, recvs = 0;
  for (const auto& task : graph.per_task) {
    sends += task.send_links;
    recvs += task.recv_links;
  }
  EXPECT_EQ(sends, recvs);

  // Invariant 2: task bytes sum to the serial count.
  const lbm::KernelConfig config{};
  const auto bytes = decomp::task_bytes_per_step(mesh, part, config);
  real_t sum = 0.0;
  for (real_t b : bytes) sum += b;
  EXPECT_NEAR(sum, lbm::serial_bytes_per_step(mesh, config),
              1e-9 * sum + 1e-6);

  // Invariant 3: imbalance >= 1 and bounded by the task count.
  const real_t z = decomp::measured_imbalance(mesh, part, config);
  EXPECT_GE(z, 1.0 - 1e-12);
  EXPECT_LE(z, static_cast<real_t>(n_tasks));

  // Invariant 4: message link counts are positive and each message's
  // endpoints differ.
  for (const auto& m : graph.messages) {
    EXPECT_GT(m.link_count, 0);
    EXPECT_NE(m.from, m.to);
  }
}

INSTANTIATE_TEST_SUITE_P(
    GeometriesAndCounts, GeometryTaskSweep,
    ::testing::Combine(::testing::Values("cylinder", "aorta", "cerebral"),
                       ::testing::Values(3, 8, 27, 64)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) + "_" +
             std::to_string(std::get<1>(info.param));
    });

// ------------------------------------------------------------ cluster

class CatalogSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(CatalogSweep, CalibrationRecoversGroundTruthMemoryLaw) {
  const auto& profile = cluster::instance_by_abbrev(GetParam());
  const auto cal = core::calibrate_instance(profile);
  // Fitted node bandwidth at full physical cores within 12 % of truth.
  const real_t n = static_cast<real_t>(profile.cores_per_node);
  const real_t truth = profile.memory.node_bandwidth_mbs(n).value();
  EXPECT_NEAR(cal.memory.bandwidth(n), truth, truth * 0.12) << GetParam();
  // Comm fits positive and ordered (intra faster than inter).
  EXPECT_GT(cal.inter.bandwidth, 0.0);
  EXPECT_GT(cal.intra.bandwidth, cal.inter.bandwidth);
  EXPECT_LT(cal.intra.latency, cal.inter.latency);
}

TEST_P(CatalogSweep, ExecutionIsDeterministicPerContext) {
  const auto& profile = cluster::instance_by_abbrev(GetParam());
  const auto geo = geometry::make_cylinder({.radius = 5, .length = 24});
  const auto mesh = lbm::FluidMesh::build(geo.grid);
  const auto part =
      decomp::make_partition(mesh, 8, decomp::Strategy::kRcb);
  const auto plan = cluster::make_workload_plan(
      mesh, part, lbm::KernelConfig{}, profile.cores_per_node);
  cluster::VirtualCluster vc(profile);
  const auto a = vc.execute(plan, 100, {2, 6, 1});
  const auto b = vc.execute(plan, 100, {2, 6, 1});
  EXPECT_DOUBLE_EQ(a.mflups.value(), b.mflups.value());
  EXPECT_EQ(a.critical_task, b.critical_task);
}

INSTANTIATE_TEST_SUITE_P(AllInstances, CatalogSweep,
                         ::testing::Values("TRC", "CSP-1", "CSP-2 Small",
                                           "CSP-2", "CSP-2 EC"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-' || c == ' ' || c == '.') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace hemo
