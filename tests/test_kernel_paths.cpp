// Bit-identity contract of the two solver hot paths.
//
// The segmented path (segment-reordered storage, branch-free RLE bulk
// kernels) must produce *bit-identical* distribution state to the fused
// reference path: both inline the single per-point arithmetic definition in
// lbm/point_update.hpp, and the reordering only changes which point is
// processed when — which cannot matter, because within a step no point
// reads a location another point writes (see the parallelization notes in
// solver.cpp). These tests assert that equivalence exhaustively across
// {AB, AA} x {AoS, SoA} x {float, double} and the physics toggles (LES,
// pulsatile inlets, periodic body-force flow), plus the structural
// invariants of the SegmentedMesh permutation itself.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <sstream>
#include <vector>

#include "geometry/generators.hpp"
#include "lbm/io.hpp"
#include "lbm/mesh.hpp"
#include "lbm/mesh_segments.hpp"
#include "lbm/solver.hpp"

namespace hemo::lbm {
namespace {

/// Physics toggles layered on the base cylinder benchmark geometry.
enum class Variant { kPlain, kLes, kPulsatile, kPeriodic };

const char* variant_name(Variant v) {
  switch (v) {
    case Variant::kPlain: return "plain";
    case Variant::kLes: return "les";
    case Variant::kPulsatile: return "pulsatile";
    case Variant::kPeriodic: return "periodic";
  }
  return "?";
}

struct Scenario {
  geometry::Geometry geo;
  MeshOptions mesh_options;
  SolverParams params;
};

Scenario make_scenario(Variant v, Layout layout, Propagation prop) {
  const bool periodic = v == Variant::kPeriodic;
  Scenario s{periodic
                 ? geometry::make_periodic_cylinder({.radius = 5, .length = 24})
                 : geometry::make_cylinder({.radius = 5, .length = 24}),
             MeshOptions{}, SolverParams{}};
  s.params.kernel.layout = layout;
  s.params.kernel.propagation = prop;
  switch (v) {
    case Variant::kPlain:
      break;
    case Variant::kLes:
      s.params.smagorinsky_cs = 0.14;
      break;
    case Variant::kPulsatile:
      for (auto& inlet : s.geo.inlets) {
        inlet.pulse_amplitude = 0.4;
        inlet.pulse_period = 10.0;
      }
      break;
    case Variant::kPeriodic:
      s.mesh_options.periodic_z = true;
      s.params.body_force = {0.0, 0.0, 1e-5};
      break;
  }
  return s;
}

/// Runs both paths `steps` timesteps and asserts bit-identical canonical
/// state at every checked instant (including an odd AA parity point).
template <typename T>
void expect_paths_bit_identical(Variant v, Layout layout, Propagation prop) {
  Scenario s = make_scenario(v, layout, prop);
  const FluidMesh mesh = FluidMesh::build(s.geo.grid, s.mesh_options);

  SolverParams ref_params = s.params;
  ref_params.kernel.path = KernelPath::kReference;
  SolverParams seg_params = s.params;
  seg_params.kernel.path = KernelPath::kSegmented;

  Solver<T> ref(mesh, ref_params, std::span(s.geo.inlets));
  Solver<T> seg(mesh, seg_params, std::span(s.geo.inlets));
  ASSERT_NE(seg.segments(), nullptr);
  ASSERT_EQ(ref.segments(), nullptr);

  // Check at an odd step count (AA mid-parity, pulse mid-cycle) and again
  // at an even one.
  for (index_t steps : {index_t{5}, index_t{4}}) {
    ref.run(steps);
    seg.run(steps);
    const std::vector<T> a = ref.export_state();
    const std::vector<T> b = seg.export_state();
    ASSERT_EQ(a.size(), b.size());
    std::size_t mismatches = 0;
    for (std::size_t k = 0; k < a.size(); ++k) {
      // Bit comparison, not EXPECT_EQ: distinguishes -0.0 / NaN patterns.
      if (std::memcmp(&a[k], &b[k], sizeof(T)) != 0) ++mismatches;
    }
    EXPECT_EQ(mismatches, 0u)
        << variant_name(v) << " " << kernel_name(ref_params.kernel)
        << " diverged at t=" << ref.timestep();
  }
}

class KernelPathBitIdentity
    : public ::testing::TestWithParam<
          std::tuple<Variant, Layout, Propagation>> {};

TEST_P(KernelPathBitIdentity, DoubleState) {
  const auto [v, layout, prop] = GetParam();
  expect_paths_bit_identical<double>(v, layout, prop);
}

TEST_P(KernelPathBitIdentity, FloatState) {
  const auto [v, layout, prop] = GetParam();
  expect_paths_bit_identical<float>(v, layout, prop);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, KernelPathBitIdentity,
    ::testing::Combine(
        ::testing::Values(Variant::kPlain, Variant::kLes, Variant::kPulsatile,
                          Variant::kPeriodic),
        ::testing::Values(Layout::kAoS, Layout::kSoA),
        ::testing::Values(Propagation::kAB, Propagation::kAA)),
    [](const auto& info) {
      return std::string(variant_name(std::get<0>(info.param))) + "_" +
             to_string(std::get<2>(info.param)) + "_" +
             to_string(std::get<1>(info.param));
    });

TEST(KernelPaths, ObservablesAgreeAcrossPaths) {
  // Derived quantities go through the index translation layer; they must
  // match exactly, not approximately.
  const auto geo = geometry::make_cylinder({.radius = 4, .length = 20});
  const FluidMesh mesh = FluidMesh::build(geo.grid);
  SolverParams ref_params, seg_params;
  ref_params.kernel.path = KernelPath::kReference;
  seg_params.kernel.path = KernelPath::kSegmented;
  Solver<double> ref(mesh, ref_params, std::span(geo.inlets));
  Solver<double> seg(mesh, seg_params, std::span(geo.inlets));
  ref.run(10);
  seg.run(10);
  for (index_t p = 0; p < mesh.num_points(); p += 11) {
    const auto ma = ref.moments_at(p);
    const auto mb = seg.moments_at(p);
    EXPECT_EQ(ma.rho, mb.rho) << "p=" << p;
    EXPECT_EQ(ma.ux, mb.ux) << "p=" << p;
    EXPECT_EQ(ma.uy, mb.uy) << "p=" << p;
    EXPECT_EQ(ma.uz, mb.uz) << "p=" << p;
    for (index_t q = 0; q < kQ; ++q) {
      EXPECT_EQ(ref.f_value(p, q), seg.f_value(p, q))
          << "p=" << p << " q=" << q;
    }
  }
  EXPECT_EQ(ref.mean_speed(), seg.mean_speed());
}

TEST(KernelPaths, StateTransfersAcrossPathsBitExactly) {
  // export_state() is canonical (original point order): a state exported
  // from one path restores into the other and the trajectories stay
  // bit-identical afterwards.
  const auto geo = geometry::make_cylinder({.radius = 4, .length = 20});
  const FluidMesh mesh = FluidMesh::build(geo.grid);
  SolverParams ref_params, seg_params;
  ref_params.kernel.path = KernelPath::kReference;
  seg_params.kernel.path = KernelPath::kSegmented;
  Solver<double> ref(mesh, ref_params, std::span(geo.inlets));
  Solver<double> seg(mesh, seg_params, std::span(geo.inlets));

  ref.run(9);
  const auto state = ref.export_state();
  seg.restore_state(state, ref.timestep());
  EXPECT_EQ(seg.export_state(), state);  // round trip through the permutation

  ref.run(6);
  seg.run(6);
  EXPECT_EQ(ref.export_state(), seg.export_state());
}

TEST(KernelPaths, CheckpointsAreCrossPathCompatible) {
  // The binary checkpoint stores canonical state: a file written by the
  // reference path loads into a segmented solver (and vice versa).
  const auto geo = geometry::make_cylinder({.radius = 4, .length = 16});
  const FluidMesh mesh = FluidMesh::build(geo.grid);
  SolverParams ref_params, seg_params;
  ref_params.kernel.path = KernelPath::kReference;
  seg_params.kernel.path = KernelPath::kSegmented;
  Solver<double> ref(mesh, ref_params, std::span(geo.inlets));
  Solver<double> seg(mesh, seg_params, std::span(geo.inlets));
  ref.run(8);
  std::stringstream buf;
  save_checkpoint(ref, buf);
  load_checkpoint(seg, buf);
  EXPECT_EQ(seg.timestep(), ref.timestep());
  EXPECT_EQ(seg.export_state(), ref.export_state());
}

TEST(SegmentedMeshTest, PermutationIsAStableBijection) {
  const auto geo = geometry::make_cylinder({.radius = 6, .length = 30});
  const FluidMesh mesh = FluidMesh::build(geo.grid);
  const SegmentedMesh seg = SegmentedMesh::build(mesh);
  const index_t n = mesh.num_points();
  ASSERT_EQ(seg.num_points(), n);

  std::vector<bool> hit(static_cast<std::size_t>(n), false);
  for (index_t i = 0; i < n; ++i) {
    const index_t p = seg.point_at(i);
    ASSERT_GE(p, 0);
    ASSERT_LT(p, n);
    EXPECT_FALSE(hit[static_cast<std::size_t>(p)]) << "duplicate point " << p;
    hit[static_cast<std::size_t>(p)] = true;
    EXPECT_EQ(seg.position_of(p), i);
    EXPECT_EQ(seg.type(i), mesh.type(p));
  }

  // Stability: original order preserved within each segment, and the bulk
  // segment is exactly the bulk-interior class.
  for (index_t i = 1; i < seg.bulk_count(); ++i) {
    EXPECT_LT(seg.point_at(i - 1), seg.point_at(i));
  }
  for (index_t i = seg.bulk_count() + 1; i < n; ++i) {
    EXPECT_LT(seg.point_at(i - 1), seg.point_at(i));
  }
  for (index_t i = 0; i < n; ++i) {
    const index_t p = seg.point_at(i);
    const bool fast = mesh.type(p) == PointType::kBulk &&
                      mesh.solid_links(p) == 0;
    EXPECT_EQ(i < seg.bulk_count(), fast);
  }

  const auto& c = seg.counts();
  EXPECT_EQ(c.bulk_interior, seg.bulk_count());
  EXPECT_EQ(c.bulk_interior + c.bulk_edge + c.wall + c.inlet + c.outlet, n);
  EXPECT_GT(c.bulk_interior, n / 2);  // cylinder is bulk-dominated
}

TEST(SegmentedMeshTest, SpansTileTheBulkSegmentWithExactOffsets) {
  const auto geo = geometry::make_cylinder({.radius = 6, .length = 30});
  const FluidMesh mesh = FluidMesh::build(geo.grid);
  const SegmentedMesh seg = SegmentedMesh::build(mesh);

  index_t covered = 0;
  for (const SegmentSpan& span : seg.spans()) {
    EXPECT_EQ(span.begin, covered);  // contiguous, ordered, gap-free
    ASSERT_GT(span.length, 0);
    for (index_t i = span.begin; i < span.begin + span.length; ++i) {
      const index_t p = seg.point_at(i);
      for (index_t q = 0; q < kQ; ++q) {
        const std::int32_t nb = mesh.neighbor(p, q);
        ASSERT_NE(nb, kSolidLink);  // bulk-interior: all links fluid
        EXPECT_EQ(seg.position_of(nb),
                  i + static_cast<index_t>(
                          span.offsets[static_cast<std::size_t>(q)]))
            << "i=" << i << " q=" << q;
      }
    }
    covered += span.length;
  }
  EXPECT_EQ(covered, seg.bulk_count());
  EXPECT_GT(seg.mean_span_length(), 1.0);  // rows actually coalesce
  EXPECT_GE(seg.max_span_length(), static_cast<index_t>(
                                       seg.mean_span_length()));
}

TEST(SegmentedMeshTest, PermutedNeighborTableMatchesOriginal) {
  const auto geo = geometry::make_cylinder({.radius = 4, .length = 16});
  const FluidMesh mesh = FluidMesh::build(geo.grid);
  const SegmentedMesh seg = SegmentedMesh::build(mesh);
  for (index_t i = 0; i < seg.num_points(); ++i) {
    const index_t p = seg.point_at(i);
    for (index_t q = 0; q < kQ; ++q) {
      const std::int32_t nb = mesh.neighbor(p, q);
      if (nb == kSolidLink) {
        EXPECT_EQ(seg.neighbor(i, q), kSolidLink);
      } else {
        EXPECT_EQ(seg.neighbor(i, q),
                  static_cast<std::int32_t>(seg.position_of(nb)));
      }
    }
  }
}

TEST(SolverReductions, MassAndSpeedMatchSerialAccumulation) {
  // The fixed-block ordered reductions must equal a plain serial
  // accumulation in the same block structure regardless of thread count;
  // here we pin the weaker, thread-count-free property that the block sum
  // equals itself computed independently.
  const auto geo = geometry::make_cylinder({.radius = 4, .length = 20});
  const FluidMesh mesh = FluidMesh::build(geo.grid);
  SolverParams params;
  Solver<double> solver(mesh, params, std::span(geo.inlets));
  solver.run(6);

  const real_t mass = solver.total_mass();
  EXPECT_EQ(mass, solver.total_mass());  // deterministic across calls
  real_t approx = 0.0;
  for (index_t p = 0; p < mesh.num_points(); ++p) {
    approx += solver.moments_at(p).rho;
  }
  EXPECT_NEAR(mass, approx, std::abs(approx) * 1e-12);

  const real_t speed = solver.mean_speed();
  EXPECT_EQ(speed, solver.mean_speed());
  EXPECT_GT(speed, 0.0);
}

}  // namespace
}  // namespace hemo::lbm
