// Unit tests for the lattice, the sparse mesh, and the access accounting.
#include <gtest/gtest.h>

#include <numeric>

#include "geometry/generators.hpp"
#include "lbm/access_counts.hpp"
#include "lbm/lattice.hpp"
#include "lbm/mesh.hpp"

namespace hemo::lbm {
namespace {

TEST(Lattice, WeightsSumToOne) {
  real_t sum = 0.0;
  for (real_t w : kWeights) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-14);
}

TEST(Lattice, EquilibriumMomentsMatchInputs) {
  const real_t rho = 1.07, ux = 0.03, uy = -0.02, uz = 0.05;
  std::array<double, kQ> f;
  for (index_t i = 0; i < kQ; ++i) {
    f[static_cast<std::size_t>(i)] = equilibrium<double>(i, rho, ux, uy, uz);
  }
  const auto m = moments<double>(std::span<const double, kQ>(f));
  EXPECT_NEAR(m.rho, rho, 1e-12);
  EXPECT_NEAR(m.ux, ux, 1e-12);
  EXPECT_NEAR(m.uy, uy, 1e-12);
  EXPECT_NEAR(m.uz, uz, 1e-12);
}

TEST(Lattice, RestEquilibriumIsWeights) {
  for (index_t i = 0; i < kQ; ++i) {
    EXPECT_NEAR(equilibrium<double>(i, 1.0, 0.0, 0.0, 0.0),
                kWeights[static_cast<std::size_t>(i)], 1e-14);
  }
}

TEST(Lattice, ViscosityFromTau) {
  EXPECT_NEAR(viscosity_from_tau(0.8), 0.1, 1e-12);
  EXPECT_NEAR(viscosity_from_tau(0.5), 0.0, 1e-12);
}

TEST(Lattice, BgkCollideFixedPointAtEquilibrium) {
  EXPECT_DOUBLE_EQ(bgk_collide(0.3, 0.3, 1.25), 0.3);
  // Full relaxation at omega = 1 lands exactly on equilibrium.
  EXPECT_DOUBLE_EQ(bgk_collide(0.5, 0.3, 1.0), 0.3);
}

TEST(FluidMesh, BuildsConsistentNeighborTable) {
  const auto geo = geometry::make_cylinder({.radius = 4, .length = 16});
  const FluidMesh mesh = FluidMesh::build(geo.grid);
  EXPECT_GT(mesh.num_points(), 0);
  EXPECT_EQ(mesh.type_counts().fluid(), mesh.num_points());

  for (index_t p = 0; p < mesh.num_points(); ++p) {
    // Rest direction always self-links.
    EXPECT_EQ(mesh.neighbor(p, 0), static_cast<std::int32_t>(p));
    for (index_t q = 1; q < kQ; ++q) {
      const std::int32_t nb = mesh.neighbor(p, q);
      if (nb == kSolidLink) continue;
      // Reciprocity: my neighbor's opposite link points back at me.
      EXPECT_EQ(mesh.neighbor(static_cast<index_t>(nb), opposite(q)),
                static_cast<std::int32_t>(p));
    }
  }
}

TEST(FluidMesh, SolidLinkCountsMatchTable) {
  const auto geo = geometry::make_cylinder({.radius = 3, .length = 10});
  const FluidMesh mesh = FluidMesh::build(geo.grid);
  index_t total = 0;
  for (index_t p = 0; p < mesh.num_points(); ++p) {
    index_t s = 0;
    for (index_t q = 1; q < kQ; ++q) {
      if (mesh.neighbor(p, q) == kSolidLink) ++s;
    }
    EXPECT_EQ(mesh.solid_links(p), s);
    total += s;
  }
  EXPECT_EQ(mesh.total_solid_links(), total);
}

TEST(FluidMesh, BulkPointsHaveNoSolidLinks) {
  const auto geo = geometry::make_cylinder({.radius = 5, .length = 20});
  const FluidMesh mesh = FluidMesh::build(geo.grid);
  for (index_t p = 0; p < mesh.num_points(); ++p) {
    if (mesh.type(p) == PointType::kBulk) {
      EXPECT_EQ(mesh.solid_links(p), 0);
    }
  }
}

TEST(AccessCounts, AaTrafficsLessThanAb) {
  // The AA pattern touches one array and loads indices every other step
  // (paper Fig. 4 discussion).
  KernelConfig ab{Layout::kAoS, Propagation::kAB, Unroll::kYes,
                  Precision::kDouble};
  KernelConfig aa = ab;
  aa.propagation = Propagation::kAA;
  const real_t bulk_ab = point_traffic(ab, PointType::kBulk, 0).total();
  const real_t bulk_aa = point_traffic(aa, PointType::kBulk, 0).total();
  EXPECT_LT(bulk_aa, bulk_ab);
  EXPECT_GT(bulk_ab / bulk_aa, 1.2);
}

TEST(AccessCounts, WallPointsCostLessThanBulk) {
  // Fewer accesses for wall updates is what makes the cerebral geometry
  // the fastest in Fig. 3.
  KernelConfig config{};
  const real_t bulk = point_traffic(config, PointType::kBulk, 0).total();
  const real_t wall = point_traffic(config, PointType::kWall, 9).total();
  EXPECT_LT(wall, bulk);
}

TEST(AccessCounts, SinglePrecisionHalvesDataBytes) {
  KernelConfig d{};
  KernelConfig s = d;
  s.precision = Precision::kSingle;
  const auto td = point_traffic(d, PointType::kBulk, 0);
  const auto ts = point_traffic(s, PointType::kBulk, 0);
  EXPECT_DOUBLE_EQ(ts.data_bytes * 2.0, td.data_bytes);
  EXPECT_DOUBLE_EQ(ts.index_bytes, td.index_bytes);  // indices unchanged
}

TEST(AccessCounts, BoundaryPointsPayBcOverhead) {
  KernelConfig config{};
  const real_t wall = point_traffic(config, PointType::kWall, 5).total();
  const real_t inlet = point_traffic(config, PointType::kInlet, 5).total();
  EXPECT_GT(inlet, wall);
}

TEST(AccessCounts, SerialBytesIsSumOverPoints) {
  const auto geo = geometry::make_cylinder({.radius = 3, .length = 8});
  const FluidMesh mesh = FluidMesh::build(geo.grid);
  KernelConfig config{};
  std::vector<index_t> all(static_cast<std::size_t>(mesh.num_points()));
  std::iota(all.begin(), all.end(), 0);
  EXPECT_DOUBLE_EQ(serial_bytes_per_step(mesh, config),
                   bytes_for_points(mesh, all, config));
}

TEST(KernelTraits, UnrolledIsCheaperAndAosIsFullBandwidth) {
  KernelConfig unrolled{Layout::kAoS, Propagation::kAB, Unroll::kYes,
                        Precision::kDouble};
  KernelConfig looped = unrolled;
  looped.unroll = Unroll::kNo;
  EXPECT_LT(kernel_traits(unrolled).overhead_cycles_per_point,
            kernel_traits(looped).overhead_cycles_per_point);
  EXPECT_DOUBLE_EQ(kernel_traits(unrolled).bandwidth_efficiency, 1.0);

  KernelConfig soa_ab = unrolled;
  soa_ab.layout = Layout::kSoA;
  EXPECT_LT(kernel_traits(soa_ab).bandwidth_efficiency, 1.0);
}

TEST(KernelConfig, NamesAreStable) {
  KernelConfig c{Layout::kSoA, Propagation::kAA, Unroll::kYes,
                 Precision::kDouble};
  EXPECT_EQ(kernel_name(c), "AA-SoA-unrolled");
  EXPECT_EQ(to_string(Precision::kSingle), "single");
}

}  // namespace
}  // namespace hemo::lbm
