// Tests for the dimensional-safety layer (src/units/units.hpp): explicit
// scale conversions round-trip exactly where the math allows it, the
// curated cross-unit algebra produces the right types and numbers, and —
// via requires-expressions evaluated at compile time — the illegal mixes
// the layer exists to forbid really are ill-formed. The latter complements
// tests/compile_fail/, which proves the same thing end-to-end through a
// real failed compiler invocation.
#include <gtest/gtest.h>

#include <type_traits>

#include "core/models.hpp"
#include "units/units.hpp"

namespace hemo::units {
namespace {

// --- Compile-time legality probes ----------------------------------------
// ok_plus<A, B> is true iff `A + B` compiles, and so on. These evaluate
// inside the test TU, so a regression in units.hpp that legalises an
// illegal mix breaks the build of the tier-1 suite itself.
template <class A, class B>
concept ok_plus = requires(A a, B b) { a + b; };
template <class A, class B>
concept ok_div = requires(A a, B b) { a / b; };
template <class A, class B>
concept ok_mul = requires(A a, B b) { a * b; };
template <class A, class B>
concept ok_cmp = requires(A a, B b) { a < b; };
template <class To, class From>
concept ok_convert = std::is_convertible_v<From, To>;

// Same-tag algebra stays available...
static_assert(ok_plus<Seconds, Seconds>);
static_assert(ok_div<Bytes, Bytes>);  // dimensionless ratio
static_assert(ok_cmp<Dollars, Dollars>);
static_assert(ok_mul<Mflups, real_t>);

// ...the curated cross-unit operations exist with the right result types...
static_assert(std::is_same_v<decltype(Bytes{} / BytesPerSec{}), Seconds>);
static_assert(std::is_same_v<decltype(Bytes{} / Seconds{}), BytesPerSec>);
static_assert(std::is_same_v<decltype(BytesPerSec{} * Seconds{}), Bytes>);
static_assert(std::is_same_v<decltype(Hours{} * DollarsPerHour{}), Dollars>);
static_assert(std::is_same_v<decltype(Dollars{} / DollarsPerHour{}), Hours>);
static_assert(std::is_same_v<decltype(Dollars{} / Hours{}), DollarsPerHour>);
static_assert(
    std::is_same_v<decltype(Mflups{} / DollarsPerHour{}), MflupsPerDollarHour>);
static_assert(std::is_same_v<decltype(PerHour{} * Hours{}), real_t>);
static_assert(
    std::is_same_v<decltype(GflopsPerSec{} / GigabytesPerSec{}), FlopsPerByte>);
static_assert(std::is_same_v<decltype(Seconds{} / Seconds{}), real_t>);

// ...and everything else is ill-formed.
static_assert(!ok_plus<Seconds, Bytes>);
static_assert(!ok_plus<Seconds, Hours>);  // same dimension, different scale
static_assert(!ok_plus<Bytes, Gibibytes>);
static_assert(!ok_plus<Dollars, DollarsPerHour>);
static_assert(!ok_plus<Seconds, real_t>);
static_assert(!ok_div<Seconds, Bytes>);
static_assert(!ok_div<Dollars, Seconds>);  // must convert to Hours first
static_assert(!ok_div<BytesPerSec, Bytes>);
static_assert(!ok_mul<Seconds, Seconds>);  // no s^2 in the model
static_assert(!ok_mul<Dollars, DollarsPerHour>);
static_assert(!ok_mul<PerHour, Seconds>);  // rate is per *hour*
static_assert(!ok_cmp<Seconds, Hours>);
static_assert(!ok_cmp<Seconds, real_t>);

// No implicit conversions in or out of the wrapper.
static_assert(!ok_convert<Seconds, real_t>);
static_assert(!ok_convert<real_t, Seconds>);
static_assert(!ok_convert<Seconds, Hours>);
static_assert(!ok_convert<Bytes, Seconds>);
static_assert(!ok_convert<Cores, index_t>);

// The acceptance-criteria APIs: swapped argument orders must not compile.
template <class A, class B>
concept ok_mflups_from = requires(A a, B b) { core::mflups_from(a, b); };
template <class A, class B>
concept ok_tts = requires(A a, B b) { core::time_to_solution(a, b); };
template <class A, class B>
concept ok_total_cost = requires(A a, B b) { core::total_cost(a, b); };

static_assert(ok_mflups_from<real_t, Seconds>);
static_assert(!ok_mflups_from<Seconds, real_t>);  // swapped
static_assert(!ok_mflups_from<real_t, Bytes>);    // wrong dimension
static_assert(!ok_mflups_from<real_t, Hours>);    // wrong scale
static_assert(ok_tts<Seconds, index_t>);
static_assert(!ok_tts<index_t, Seconds>);  // swapped
static_assert(ok_total_cost<DollarsPerHour, Seconds>);
static_assert(!ok_total_cost<Seconds, DollarsPerHour>);  // swapped
static_assert(!ok_total_cost<Dollars, Seconds>);  // $ where $/h expected

// Zero overhead: the wrapper is layout-identical to its representation and
// trivially copyable, so it passes in registers exactly like a bare double.
static_assert(sizeof(Seconds) == sizeof(real_t));
static_assert(sizeof(Cores) == sizeof(index_t));
static_assert(std::is_trivially_copyable_v<Seconds>);

// The curated algebra is constexpr end to end.
static_assert((Bytes(6.0) / BytesPerSec(2.0)).value() == 3.0);
static_assert((Hours(2.0) * DollarsPerHour(3.0)).value() == 6.0);
static_assert(to_hours(Seconds(7200.0)).value() == 2.0);

// --- Runtime behaviour ----------------------------------------------------

TEST(Units, TimeRoundTripsExactly) {
  // 3600 divides the mantissa cleanly for these values: s -> h -> s is
  // bit-exact, which the byte-identical-numerics contract relies on.
  for (const real_t s : {0.0, 1.0, 1800.0, 3600.0, 86400.0, 1.25e7}) {
    EXPECT_EQ(to_seconds(to_hours(Seconds(s))).value(), s);
  }
  EXPECT_EQ(to_seconds(to_microseconds(Seconds(0.25))).value(), 0.25);
  EXPECT_DOUBLE_EQ(to_seconds(to_microseconds(Seconds(1.7))).value(), 1.7);
}

TEST(Units, BytesRoundTripsExactly) {
  // Powers of two survive the binary-scale GiB conversion bit-exactly.
  for (const real_t b : {0.0, 512.0, 1048576.0, 1073741824.0, 6.0e9}) {
    EXPECT_EQ(to_bytes(to_gibibytes(Bytes(b))).value(), b);
  }
  EXPECT_DOUBLE_EQ(to_bytes_per_sec(MegabytesPerSec(25600.0)).value(),
                   2.56e10);
  EXPECT_DOUBLE_EQ(
      to_megabytes_per_sec(to_bytes_per_sec(MegabytesPerSec(204.8))).value(),
      204.8);
  EXPECT_DOUBLE_EQ(to_gigabytes_per_sec(MegabytesPerSec(25600.0)).value(),
                   25.6);
}

TEST(Units, ConstructorStoresTheExactValue) {
  // No hidden normalisation: what goes in comes out.
  EXPECT_EQ(Seconds(0.1).value(), 0.1);
  EXPECT_EQ(DollarsPerHour(2.448).value(), 2.448);
  EXPECT_EQ(Cores(96).value(), 96);
}

TEST(Units, SameTagAlgebra) {
  units::Seconds t(1.5);
  t += Seconds(0.5);
  t *= 2.0;
  EXPECT_EQ(t.value(), 4.0);
  EXPECT_EQ((t - Seconds(1.0)).value(), 3.0);
  EXPECT_EQ((-t).value(), -4.0);
  EXPECT_EQ(t / Seconds(2.0), 2.0);  // dimensionless
  EXPECT_LT(Seconds(1.0), Seconds(2.0));
  EXPECT_EQ(Bytes(8.0), Bytes(8.0));
}

TEST(Units, CrossUnitAlgebraMatchesBareDoubleMath) {
  const Bytes bytes(4.8e9);
  const BytesPerSec bw(1.2e9);
  EXPECT_EQ((bytes / bw).value(), 4.8e9 / 1.2e9);
  EXPECT_EQ((bw * Seconds(2.0)).value(), (Seconds(2.0) * bw).value());

  const Seconds runtime(5400.0);
  const DollarsPerHour rate(2.448);
  const Dollars cost = to_hours(runtime) * rate;
  EXPECT_EQ(cost.value(), (5400.0 / 3600.0) * 2.448);
  EXPECT_EQ((cost / rate).value(), to_hours(runtime).value());

  EXPECT_EQ((Mflups(1000.0) / rate).value(), 1000.0 / 2.448);
  EXPECT_EQ(PerHour(0.5) * Hours(6.0), 3.0);
  EXPECT_EQ((GflopsPerSec(1500.0) / GigabytesPerSec(100.0)).value(), 15.0);
}

TEST(Units, ModelHelpersCarryUnits) {
  const Mflups m = core::mflups_from(1.0e6, Seconds(0.5));
  EXPECT_EQ(m.value(), 2.0);
  const Seconds tts = core::time_to_solution(Seconds(0.02), 1000);
  EXPECT_EQ(tts.value(), 20.0);
  const Dollars cost = core::total_cost(DollarsPerHour(3.6), Seconds(3600.0));
  EXPECT_DOUBLE_EQ(cost.value(), 3.6);
}

}  // namespace
}  // namespace hemo::units
