// Integration tests for the HARVEY-equivalent: the simulation driver and,
// critically, the distributed halo-exchange solver against the serial one.
#include <gtest/gtest.h>

#include <cmath>

#include "decomp/comm_graph.hpp"
#include "harvey/distributed.hpp"
#include "harvey/simulation.hpp"

namespace hemo::harvey {
namespace {

SimulationOptions default_options() {
  SimulationOptions opts;
  opts.solver.tau = 0.8;
  return opts;
}

TEST(Simulation, CachesPartitionsAndPlans) {
  Simulation sim(geometry::make_cylinder({.radius = 5, .length = 30}),
                 default_options());
  const auto& p1 = sim.partition(8);
  const auto& p2 = sim.partition(8);
  EXPECT_EQ(&p1, &p2);  // same cached object
  const auto& plan1 = sim.plan(8, 4);
  const auto& plan2 = sim.plan(8, 4);
  EXPECT_EQ(&plan1, &plan2);
  EXPECT_EQ(plan1.n_nodes, 2);
}

TEST(Simulation, MeasureShowsWithinNodeScalingThenCommCollapse) {
  // Within one node, adding ranks adds bandwidth share and throughput
  // rises; spilling a small domain across nodes makes latency-dominated
  // halo exchange take over — the strong-scaling rollover of Figs. 3/7.
  Simulation sim(geometry::make_cylinder({.radius = 6, .length = 40}),
                 default_options());
  const auto& csp2 = cluster::instance_by_abbrev("CSP-2");
  const auto r4 = sim.measure(csp2, 4, 500);
  const auto r16 = sim.measure(csp2, 16, 500);
  const auto r64 = sim.measure(csp2, 64, 500);
  EXPECT_GT(r16.mflups.value(), r4.mflups.value());
  EXPECT_GT(r64.mflups.value(), 0.0);
  // At 64 ranks (2 nodes) on this small domain, internodal communication
  // dominates the critical task's step time.
  EXPECT_GT(r64.critical.inter_s.value(), r64.critical.mem_s.value());
}

class DistributedEquivalence
    : public ::testing::TestWithParam<decomp::Strategy> {};

TEST_P(DistributedEquivalence, MatchesSerialSolverBitwise) {
  // The decisive correctness test for the halo-exchange semantics the
  // performance models count: a distributed run over per-task arrays with
  // ghost exchange must reproduce the serial solver exactly.
  const auto geo = geometry::make_cylinder({.radius = 5, .length = 24});
  const auto mesh = lbm::FluidMesh::build(geo.grid);
  lbm::SolverParams params;
  params.tau = 0.8;

  lbm::Solver<double> serial(mesh, params, std::span(geo.inlets));
  const auto part = decomp::make_partition(mesh, 7, GetParam());
  DistributedSolver dist(mesh, part, params, std::span(geo.inlets));

  serial.run(60);
  dist.run(60);

  for (index_t p = 0; p < mesh.num_points(); ++p) {
    const auto ms = serial.moments_at(p);
    const auto md = dist.moments_at(p);
    ASSERT_DOUBLE_EQ(ms.rho, md.rho) << "point " << p;
    ASSERT_DOUBLE_EQ(ms.uz, md.uz) << "point " << p;
  }
  EXPECT_NEAR(serial.total_mass(), dist.total_mass(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Strategies, DistributedEquivalence,
                         ::testing::Values(decomp::Strategy::kGrid,
                                           decomp::Strategy::kRcb,
                                           decomp::Strategy::kSlab),
                         [](const auto& info) {
                           return std::string(decomp::to_string(info.param));
                         });

TEST(DistributedSolver, GhostsMatchCommGraphStructure) {
  const auto geo = geometry::make_cylinder({.radius = 5, .length = 24});
  const auto mesh = lbm::FluidMesh::build(geo.grid);
  const auto part = decomp::make_partition(mesh, 5, decomp::Strategy::kRcb);
  lbm::SolverParams params;
  DistributedSolver dist(mesh, part, params, std::span(geo.inlets));
  const auto graph = decomp::build_comm_graph(mesh, part);
  // Every communicated link corresponds to a ghost point; ghosts
  // deduplicate links that share an upstream point, so ghosts <= links.
  index_t total_links = 0;
  for (const auto& m : graph.messages) total_links += m.link_count;
  EXPECT_GT(dist.ghost_count(), 0);
  EXPECT_LE(dist.ghost_count(), total_links);
}

TEST(DistributedSolver, RejectsUnsupportedKernels) {
  const auto geo = geometry::make_cylinder({.radius = 4, .length = 12});
  const auto mesh = lbm::FluidMesh::build(geo.grid);
  const auto part = decomp::make_partition(mesh, 2, decomp::Strategy::kRcb);
  lbm::SolverParams params;
  params.kernel.propagation = lbm::Propagation::kAA;
  EXPECT_THROW(DistributedSolver(mesh, part, params, std::span(geo.inlets)),
               PreconditionError);
}

TEST(Simulation, GeometryEffectsMatchPaperOrdering) {
  // Fig. 3: with the same core budget, the wall-point-rich cerebral
  // geometry achieves the highest MFLUPS.
  const auto& csp2 = cluster::instance_by_abbrev("CSP-2");
  Simulation cyl(geometry::make_cylinder({.radius = 10, .length = 80}),
                 default_options());
  Simulation cer(geometry::make_cerebral({.depth = 5}), default_options());
  const real_t m_cyl = cyl.measure(csp2, 36, 200).mflups.value();
  const real_t m_cer = cer.measure(csp2, 36, 200).mflups.value();
  EXPECT_GT(m_cer, m_cyl);
}

}  // namespace
}  // namespace hemo::harvey
