// Tests for the validation harness (src/check/): the property framework's
// replay/shrink machinery, the HEMO_SEED plumbing, the seed-driven
// generators, and the fault-injection hooks in simulate_attempt /
// CampaignEngine. The full differential-oracle and mutation suites run in
// test_check_slow.cpp (ctest label "slow").
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "check/generators.hpp"
#include "check/property.hpp"
#include "sched/executor.hpp"
#include "sched/guard.hpp"
#include "sched/report.hpp"
#include "sched/scheduler.hpp"

namespace hemo::check {
namespace {

// ---------------------------------------------------------------- property

Property<index_t> threshold_property(index_t limit) {
  // Fails for any value >= limit; shrinking by halving must land exactly
  // on the limit — the minimal counterexample.
  Property<index_t> p;
  p.name = "threshold";
  p.generate = [](Xoshiro256& rng) { return rng.below(1000); };
  p.check = [limit](const index_t& v) -> std::optional<std::string> {
    if (v >= limit) return "value " + std::to_string(v) + " over limit";
    return std::nullopt;
  };
  p.describe = [](const index_t& v) { return std::to_string(v); };
  p.shrink = [](const index_t& v) {
    std::vector<index_t> out;
    if (v > 0) out.push_back(v / 2);
    if (v > 0) out.push_back(v - 1);
    return out;
  };
  return p;
}

TEST(PropertyFramework, PassingPropertyRunsEveryCase) {
  Property<index_t> p = threshold_property(1001);  // nothing can fail
  PropertyConfig config;
  config.seed = 7;
  config.cases = 25;
  const PropertyResult r = run_property(p, config);
  EXPECT_TRUE(r.passed);
  EXPECT_EQ(r.cases_run, 25);
  EXPECT_NE(r.summary().find("OK"), std::string::npos);
}

TEST(PropertyFramework, ShrinksToTheMinimalCounterexample) {
  const index_t limit = 10;
  Property<index_t> p = threshold_property(limit);
  PropertyConfig config;
  config.seed = 7;
  config.cases = 50;
  const PropertyResult r = run_property(p, config);
  ASSERT_FALSE(r.passed);
  // Halving/decrement shrinking from any failing value must reach the
  // boundary exactly.
  EXPECT_EQ(r.counterexample, std::to_string(limit));
  EXPECT_GT(r.shrink_steps, 0);
  EXPECT_EQ(r.failing_seed,
            hash_seed(config.seed, static_cast<std::uint64_t>(r.failing_case)));
}

TEST(PropertyFramework, FailureReplaysByteIdentically) {
  Property<index_t> p = threshold_property(10);
  PropertyConfig config;
  config.seed = 99;
  config.cases = 40;
  const PropertyResult a = run_property(p, config);
  const PropertyResult b = run_property(p, config);
  EXPECT_EQ(a.passed, b.passed);
  EXPECT_EQ(a.failing_case, b.failing_case);
  EXPECT_EQ(a.failing_seed, b.failing_seed);
  EXPECT_EQ(a.counterexample, b.counterexample);
  EXPECT_EQ(a.summary(), b.summary());
}

TEST(PropertyFramework, ShrinkBudgetBoundsTheSearch) {
  Property<index_t> p = threshold_property(1);  // everything nonzero fails
  PropertyConfig config;
  config.seed = 3;
  config.cases = 5;
  config.max_shrink_steps = 2;
  const PropertyResult r = run_property(p, config);
  ASSERT_FALSE(r.passed);
  EXPECT_LE(r.shrink_steps, 2);
}

TEST(PropertyFramework, DefaultSeedIsTheProcessSeed) {
  const PropertyConfig config;
  EXPECT_EQ(config.seed, global_seed());
}

// -------------------------------------------------------------------- seed

TEST(SeedParsing, AcceptsDecimalAndHex) {
  EXPECT_EQ(parse_seed("123", 7), 123u);
  EXPECT_EQ(parse_seed("0x10", 7), 16u);
  EXPECT_EQ(parse_seed("0", 7), 0u);
}

TEST(SeedParsing, FallsBackOnGarbage) {
  EXPECT_EQ(parse_seed(nullptr, 7), 7u);
  EXPECT_EQ(parse_seed("", 7), 7u);
  EXPECT_EQ(parse_seed("12abc", 7), 7u);
  EXPECT_EQ(parse_seed("seed", 7), 7u);
}

TEST(SeedParsing, GlobalSeedIsStableWithinTheProcess) {
  // The cached value must not change between calls (replay depends on it).
  EXPECT_EQ(global_seed(), global_seed());
}

// -------------------------------------------------------------- generators

TEST(Generators, GeometryIsDeterministicPerSeed) {
  Xoshiro256 a(2024), b(2024), c(2025);
  const auto ga = gen_geometry(a);
  const auto gb = gen_geometry(b);
  EXPECT_EQ(ga.name, gb.name);
  EXPECT_EQ(ga.grid.nx(), gb.grid.nx());
  EXPECT_EQ(ga.grid.nz(), gb.grid.nz());
  // A different stream picks a different shape (name or dimensions).
  const auto gc = gen_geometry(c);
  EXPECT_TRUE(gc.name != ga.name || gc.grid.nz() != ga.grid.nz());
}

TEST(Generators, GeometriesComeFromTheFiveFamilies) {
  const auto& families = geometry_families();
  ASSERT_EQ(families.size(), 5u);
  Xoshiro256 rng(11);
  std::set<std::string> seen;
  for (int i = 0; i < 40; ++i) {
    const auto geo = gen_geometry(rng);
    bool known = false;
    for (const auto& f : families) {
      if (geo.name.rfind(f, 0) == 0) known = true;
    }
    EXPECT_TRUE(known) << "unknown family for geometry " << geo.name;
    seen.insert(geo.name.substr(0, geo.name.find('-')));
    EXPECT_GT(geo.grid.nx(), 0);
  }
  EXPECT_GE(seen.size(), 3u) << "40 draws should cover several families";
}

TEST(Generators, CpuCatalogExcludesGpuAndHyperthreaded) {
  for (const cluster::InstanceProfile* p : cpu_catalog()) {
    EXPECT_FALSE(p->gpu.has_value()) << p->abbrev;
    EXPECT_NE(p->abbrev, "CSP-2 Hyp.");
  }
  EXPECT_EQ(cpu_catalog().size(), 5u);  // TRC, CSP-1, CSP-2 {Small,,EC}
}

TEST(Generators, JobSpecsHaveUniqueSequentialIds) {
  Xoshiro256 rng(5);
  const auto jobs = gen_job_specs(rng, 12, "cylinder");
  ASSERT_EQ(jobs.size(), 12u);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].id, static_cast<index_t>(i) + 1);
    EXPECT_EQ(jobs[i].geometry, "cylinder");
    EXPECT_GE(jobs[i].timesteps, 200);
    EXPECT_LE(jobs[i].timesteps, 1000);
  }
}

TEST(Generators, ModelParametersStayInPhysicalRanges) {
  Xoshiro256 rng(17);
  for (int i = 0; i < 20; ++i) {
    const auto two_line = gen_two_line_model(rng);
    EXPECT_GT(two_line.a1, two_line.a2);  // saturated slope is shallower
    EXPECT_GT(two_line.a3, 0.0);
    const auto comm = gen_comm_model(rng);
    EXPECT_GT(comm.bandwidth, 0.0);
    EXPECT_GT(comm.latency, 0.0);
    const auto imb = gen_imbalance_model(rng);
    EXPECT_GE(imb.z(8.0), 1.0);  // z >= 1 by construction
    const auto events = gen_event_count_model(rng);
    EXPECT_GT(events.k1, 0.0);
  }
}

// --------------------------------------------------------- fault injection

std::unique_ptr<sched::CampaignScheduler> fault_test_scheduler() {
  sched::SchedulerConfig config;
  config.core_counts = {8, 16, 32};
  config.pilot_steps = 120;
  auto scheduler = std::make_unique<sched::CampaignScheduler>(
      std::vector<const cluster::InstanceProfile*>{
          &cluster::instance_by_abbrev("CSP-1"),
          &cluster::instance_by_abbrev("CSP-2 Small")},
      config);
  const std::vector<index_t> cal_counts = {2, 4, 8};
  scheduler->register_workload(
      "cylinder", geometry::make_cylinder({.radius = 6, .length = 40}),
      cal_counts);
  return scheduler;
}

sched::AttemptContext make_attempt_context(sched::CampaignScheduler& s,
                                           index_t steps) {
  sched::CampaignJobSpec spec;
  spec.id = 1;
  spec.geometry = "cylinder";
  spec.timesteps = steps;
  sched::PlacementRequest request;
  request.spec = &spec;
  request.remaining_steps = steps;
  const auto decision = s.place(request);
  EXPECT_EQ(decision.kind, sched::PlacementDecision::Kind::kPlaced);

  sched::AttemptContext ctx;
  ctx.plan = &s.plan_for("cylinder", decision.placement.instance,
                         decision.placement.n_tasks);
  ctx.profile = &s.profile_for(decision.placement.instance);
  ctx.placement = decision.placement;
  ctx.guard.predicted_seconds = decision.placement.predicted_seconds;
  ctx.guard.tolerance = 0.10;
  ctx.steps = steps;
  ctx.seed = 404;
  return ctx;
}

TEST(FaultInjection, DisabledFaultsLeaveAttemptsByteIdentical) {
  auto scheduler = fault_test_scheduler();
  sched::AttemptContext ctx = make_attempt_context(*scheduler, 5000);
  EXPECT_FALSE(ctx.faults.any());

  const sched::AttemptResult a = simulate_attempt(ctx);
  sched::AttemptContext explicit_off = ctx;
  explicit_off.faults = sched::FaultInjection{};  // spelled-out defaults
  const sched::AttemptResult b = simulate_attempt(explicit_off);
  EXPECT_EQ(a.steps_done, b.steps_done);
  EXPECT_DOUBLE_EQ(a.sim_seconds.value(), b.sim_seconds.value());
  EXPECT_DOUBLE_EQ(a.compute_seconds.value(), b.compute_seconds.value());
  EXPECT_DOUBLE_EQ(a.dollars.value(), b.dollars.value());
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.checkpoint_corruptions, 0);
  EXPECT_EQ(b.checkpoint_corruptions, 0);
}

TEST(FaultInjection, SlowdownTripsTheOverrunGuard) {
  auto scheduler = fault_test_scheduler();
  sched::AttemptContext ctx = make_attempt_context(*scheduler, 5000);
  const sched::AttemptResult healthy = simulate_attempt(ctx);
  EXPECT_FALSE(healthy.overrun_aborted);

  // A 60 % slowdown against a 10 % tolerance must hard-stop the attempt
  // at a checkpoint boundary.
  ctx.faults.slowdown_factor = 1.6;
  const sched::AttemptResult slowed = simulate_attempt(ctx);
  EXPECT_TRUE(slowed.overrun_aborted);
  EXPECT_LT(slowed.steps_done, 5000);
  EXPECT_EQ(slowed.steps_done % (5000 / ctx.n_chunks), 0)
      << "guard stop must land on a checkpoint boundary";
}

TEST(FaultInjection, PreemptionStormExhaustsRetries) {
  auto scheduler = fault_test_scheduler();
  sched::AttemptContext ctx = make_attempt_context(*scheduler, 5000);
  ctx.placement.spot = true;
  ctx.guard.predicted_seconds *= 10.0;  // isolate preemption from the guard
  ctx.max_preemptions = 4;
  ctx.faults.extra_preemption_probability = 1.0;  // every chunk interrupted
  const sched::AttemptResult r = simulate_attempt(ctx);
  EXPECT_TRUE(r.retries_exhausted);
  EXPECT_EQ(r.steps_done, 0);
  EXPECT_GE(r.preemptions, ctx.max_preemptions);
}

TEST(FaultInjection, CorruptedCheckpointsAreCountedAndRedone) {
  auto scheduler = fault_test_scheduler();
  sched::AttemptContext ctx = make_attempt_context(*scheduler, 5000);
  ctx.placement.spot = true;
  // Disarm the guard completely: the 120 s restart overheads dwarf this
  // sub-second job, and this test is about corruption accounting, not
  // pacing.
  ctx.guard.predicted_seconds = units::Seconds(1e9);
  ctx.max_preemptions = 64;
  // A corruption rolls a chunk back, so keep the interruption probability
  // well under 0.5 per chunk — otherwise progress is a driftless random
  // walk that exhausts the retry bound.
  ctx.faults.extra_preemption_probability = 0.35;
  ctx.faults.checkpoint_corruption_rate = 1.0;  // every resume reloads twice
  const sched::AttemptResult r = simulate_attempt(ctx);
  EXPECT_GE(r.preemptions, 1);
  EXPECT_EQ(r.checkpoint_corruptions, r.preemptions)
      << "rate 1.0 corrupts every checkpoint read back";
  // The attempt still completes: corrupted chunks are redone.
  EXPECT_EQ(r.steps_done, 5000);
  EXPECT_GT(r.sim_seconds, r.compute_seconds);
}

TEST(FaultInjection, EngineSurfacesCorruptionsInTheReport) {
  auto scheduler = fault_test_scheduler();
  sched::EngineConfig engine_config;
  engine_config.n_workers = 2;
  engine_config.seed = 31;
  engine_config.max_preemptions = 32;
  engine_config.faults.extra_preemption_probability = 0.4;
  engine_config.faults.checkpoint_corruption_rate = 1.0;
  sched::CampaignEngine engine(*scheduler, engine_config);

  std::vector<sched::CampaignJobSpec> jobs;
  for (index_t i = 0; i < 3; ++i) {
    sched::CampaignJobSpec spec;
    spec.id = i + 1;
    spec.geometry = "cylinder";
    spec.timesteps = 30000;
    spec.allow_spot = true;
    jobs.push_back(spec);
  }
  const sched::CampaignReport report = engine.run(jobs);
  EXPECT_GE(report.total_corruptions, 1);
  EXPECT_NE(report.to_csv().find(",corruptions," +
                                 std::to_string(report.total_corruptions)),
            std::string::npos);
}

TEST(FaultInjection, FaultFreeEngineReportsZeroCorruptions) {
  auto scheduler = fault_test_scheduler();
  sched::CampaignEngine engine(*scheduler, sched::EngineConfig{});
  sched::CampaignJobSpec spec;
  spec.id = 1;
  spec.geometry = "cylinder";
  spec.timesteps = 5000;
  const sched::CampaignReport report = engine.run({spec});
  EXPECT_EQ(report.total_corruptions, 0);
  EXPECT_NE(report.to_csv().find(",corruptions,0"), std::string::npos);
}

}  // namespace
}  // namespace hemo::check
