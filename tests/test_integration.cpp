// End-to-end integration tests exercising the full framework of the
// paper's Fig. 1: calibrate instances, calibrate the anatomy, predict,
// "measure" on the virtual cloud, refine, and guard.
#include <gtest/gtest.h>

#include <cmath>

#include "core/dashboard.hpp"
#include "fit/stats.hpp"
#include "harvey/simulation.hpp"
#include "proxy/proxy_app.hpp"

namespace hemo {
namespace {

TEST(Integration, FullFrameworkLoopImprovesPredictions) {
  // Phase 1: characterize the instance.
  const auto& profile = cluster::instance_by_abbrev("CSP-2");
  const core::InstanceCalibration ical = core::calibrate_instance(profile);

  // Phase 2: anatomy-specific calibration on the aorta.
  harvey::SimulationOptions opts;
  opts.solver.tau = 0.8;
  harvey::Simulation sim(geometry::make_aorta({}), opts);
  const std::vector<index_t> counts = {2, 4, 8, 16, 32};
  const core::WorkloadCalibration wcal =
      core::calibrate_workload(sim, counts, profile.cores_per_node);

  // Predict, measure, record.
  core::CampaignTracker tracker;
  for (index_t n : {9, 18, 36, 72}) {
    const auto pred = core::predict_general(wcal, ical, n,
                                            profile.cores_per_node);
    const auto meas = sim.measure(profile, n, 300);
    tracker.record(core::Observation{"aorta", profile.abbrev, n,
                                     pred.mflups, meas.mflups});
  }

  // The raw model overpredicts; refinement reduces the error.
  EXPECT_LT(tracker.correction_factor(), 1.0);
  EXPECT_LT(tracker.refined_mean_abs_relative_error(),
            tracker.mean_abs_relative_error());

  // Guarded job: the refined time-to-solution estimate with 10 % tolerance
  // must cover an actual measured run.
  const auto pred36 = core::predict_general(wcal, ical, 36,
                                            profile.cores_per_node);
  const real_t refined_step =
      1.0 / (tracker.refined_mflups(pred36.mflups).value() * 1e6 /
             static_cast<real_t>(wcal.total_points));
  core::JobGuard guard;
  guard.predicted_seconds = units::Seconds(refined_step * 1000.0);
  guard.tolerance = 0.15;
  const auto actual = sim.measure(profile, 36, 1000);
  EXPECT_FALSE(guard.should_abort(actual.total_seconds, 1.0));
}

TEST(Integration, NoiseCampaignMatchesTableFourMagnitudes) {
  // Table IV: CoV of repeated measurements is small (0.004 - 0.02).
  const auto& profile = cluster::instance_by_abbrev("CSP-2 Small");
  harvey::SimulationOptions opts;
  harvey::Simulation sim(geometry::make_aorta({}), opts);
  std::vector<real_t> samples;
  for (index_t day = 0; day < 7; ++day) {
    for (index_t hour = 0; hour < 24; hour += 6) {
      samples.push_back(
          sim.measure(profile, 16, 100, {day, hour, 0}).mflups.value());
    }
  }
  const auto summary = fit::summarize(samples);
  EXPECT_GT(summary.cov, 0.001);
  EXPECT_LT(summary.cov, 0.05);
}

TEST(Integration, StrongScalingShapesMatchFigureThree) {
  // Throughput rises with ranks within a node for every geometry, and the
  // cerebral geometry leads at equal rank counts.
  const auto& profile = cluster::instance_by_abbrev("CSP-2");
  harvey::SimulationOptions opts;
  std::vector<std::pair<std::string, geometry::Geometry>> geos;
  geos.emplace_back("cylinder",
                    geometry::make_cylinder({.radius = 10, .length = 80}));
  geos.emplace_back("aorta", geometry::make_aorta({}));
  geos.emplace_back("cerebral", geometry::make_cerebral({.depth = 5}));

  real_t cerebral36 = 0.0, cylinder36 = 0.0;
  for (auto& [name, geo] : geos) {
    harvey::Simulation sim(std::move(geo), opts);
    const real_t m9 = sim.measure(profile, 9, 100).mflups.value();
    const real_t m36 = sim.measure(profile, 36, 100).mflups.value();
    EXPECT_GT(m36, m9) << name;
    if (name == "cerebral") cerebral36 = m36;
    if (name == "cylinder") cylinder36 = m36;
  }
  EXPECT_GT(cerebral36, cylinder36);
}

TEST(Integration, ProxyMeasurementsMatchKernelOrdering) {
  // Fig. 4 orderings on the virtual cloud: AA unrolled is the fastest
  // family; AB benefits from AoS.
  const auto& profile = cluster::instance_by_abbrev("CSP-2");
  proxy::ProxyParams params;
  auto mflups_for = [&](lbm::KernelConfig k) {
    proxy::ProxyApp app(params, k);
    return app.measure(profile, 36, 100).mflups.value();
  };
  lbm::KernelConfig aa_aos, ab_aos, ab_soa;
  aa_aos.propagation = lbm::Propagation::kAA;
  ab_soa.layout = lbm::Layout::kSoA;
  EXPECT_GT(mflups_for(aa_aos), mflups_for(ab_aos));
  EXPECT_GT(mflups_for(ab_aos), mflups_for(ab_soa));
}

TEST(Integration, DirectModelCompositionShowsCommGrowth) {
  // Figs. 9-10: as ranks grow, internodal communication grows into the
  // dominant share of the cylinder's critical-task runtime on CSP-2.
  const auto& profile = cluster::instance_by_abbrev("CSP-2");
  const core::InstanceCalibration ical = core::calibrate_instance(profile);
  harvey::SimulationOptions opts;
  harvey::Simulation sim(
      geometry::make_cylinder({.radius = 10, .length = 80}), opts);
  const auto p36 = core::predict_direct(sim.plan(36, 36), ical);
  const auto p144 = core::predict_direct(sim.plan(144, 36), ical);
  const real_t share36 = p36.t_comm / p36.step_seconds;
  const real_t share144 = p144.t_comm / p144.step_seconds;
  EXPECT_GT(share144, share36);
  // Internodal dwarfs intranodal at 4 nodes (paper Fig. 9: green ≪ purple).
  EXPECT_GT(p144.t_inter.value(), p144.t_intra.value());
}

}  // namespace
}  // namespace hemo
