// Tests for the CSP Option Dashboard: evaluation rows, the Eq. 17 matrix,
// recommendations under each objective, and guard construction.
#include <gtest/gtest.h>

#include "core/dashboard.hpp"
#include "harvey/simulation.hpp"

namespace hemo::core {
namespace {

class DashboardTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    std::vector<const cluster::InstanceProfile*> profiles = {
        &cluster::instance_by_abbrev("TRC"),
        &cluster::instance_by_abbrev("CSP-2"),
        &cluster::instance_by_abbrev("CSP-2 EC"),
    };
    dashboard_ = new Dashboard(std::move(profiles));

    harvey::SimulationOptions opts;
    opts.solver.tau = 0.8;
    harvey::Simulation sim(geometry::make_aorta({}), opts);
    const std::vector<index_t> counts = {2, 4, 8, 16, 32, 64};
    workload_ = new WorkloadCalibration(calibrate_workload(sim, counts, 36));
  }

  static void TearDownTestSuite() {
    delete dashboard_;
    delete workload_;
    dashboard_ = nullptr;
    workload_ = nullptr;
  }

  static Dashboard* dashboard_;
  static WorkloadCalibration* workload_;
};

Dashboard* DashboardTest::dashboard_ = nullptr;
WorkloadCalibration* DashboardTest::workload_ = nullptr;

TEST_F(DashboardTest, EvaluatesEveryInstanceAtEveryCoreCount) {
  const std::vector<index_t> cores = {36, 144};
  const auto rows = dashboard_->evaluate(*workload_, JobSpec{10000}, cores);
  EXPECT_EQ(rows.size(), 6u);  // 3 instances x 2 core counts
  for (const auto& row : rows) {
    EXPECT_GT(row.prediction.mflups.value(), 0.0);
    EXPECT_GT(row.time_to_solution_s.value(), 0.0);
    EXPECT_GT(row.total_dollars.value(), 0.0);
    EXPECT_GT(row.mflups_per_dollar_hour.value(), 0.0);
    EXPECT_GE(row.n_nodes, 1);
  }
}

TEST_F(DashboardTest, RejectsZeroStepJobs) {
  const std::vector<index_t> cores = {36};
  EXPECT_THROW((void)dashboard_->evaluate(*workload_, JobSpec{0}, cores),
               PreconditionError);
}

TEST_F(DashboardTest, RelativeValueMatrixHasUnitDiagonalAndReciprocity) {
  const std::vector<index_t> cores = {144};
  const auto rows = dashboard_->evaluate(*workload_, JobSpec{10000}, cores);
  const auto m = Dashboard::relative_value_matrix(rows);
  ASSERT_EQ(m.size(), rows.size());
  for (std::size_t b = 0; b < m.size(); ++b) {
    EXPECT_DOUBLE_EQ(m[b][b], 1.0);
    for (std::size_t a = 0; a < m.size(); ++a) {
      EXPECT_NEAR(m[b][a] * m[a][b], 1.0, 1e-9);
    }
  }
}

TEST_F(DashboardTest, EcBeatsNoEcBeatsTrcAtScale) {
  // The ordering and magnitudes of the paper's Fig. 11 heatmap at 2048
  // cores: the aorta there is a patient-scale high-resolution lattice, so
  // evaluate the model on a refined version of the calibrated anatomy.
  const WorkloadCalibration hires = scale_resolution(*workload_, 256.0);
  const std::vector<index_t> cores = {2048};
  const auto rows = dashboard_->evaluate(hires, JobSpec{10000}, cores);
  ASSERT_EQ(rows.size(), 3u);
  real_t trc = 0, csp2 = 0, ec = 0;
  for (const auto& row : rows) {
    if (row.instance == "TRC") trc = row.prediction.mflups.value();
    if (row.instance == "CSP-2") csp2 = row.prediction.mflups.value();
    if (row.instance == "CSP-2 EC") ec = row.prediction.mflups.value();
  }
  EXPECT_GT(ec, csp2);
  EXPECT_GT(csp2, trc);
  // Paper Fig. 11: r(CSP-2, TRC) = 1.2323, r(EC, TRC) = 1.3733,
  // r(EC, CSP-2) = 1.1144. Require the same ratios within ~15 %.
  EXPECT_NEAR(csp2 / trc, 1.2323, 0.19);
  EXPECT_NEAR(ec / trc, 1.3733, 0.21);
  EXPECT_NEAR(ec / csp2, 1.1144, 0.17);
}

TEST_F(DashboardTest, RecommendationsFollowObjectives) {
  const std::vector<index_t> cores = {36, 144};
  const auto rows = dashboard_->evaluate(*workload_, JobSpec{50000}, cores);

  const auto fastest =
      Dashboard::recommend(rows, Objective::kMaxThroughput);
  ASSERT_TRUE(fastest.has_value());
  for (const auto& row : rows) {
    EXPECT_LE(row.prediction.mflups.value(),
              fastest->prediction.mflups.value());
  }

  const auto cheapest = Dashboard::recommend(rows, Objective::kMinCost);
  ASSERT_TRUE(cheapest.has_value());
  for (const auto& row : rows) {
    EXPECT_GE(row.total_dollars.value(), cheapest->total_dollars.value());
  }
}

TEST_F(DashboardTest, DeadlineObjectivePicksCheapestQualifying) {
  const std::vector<index_t> cores = {36, 144};
  const auto rows = dashboard_->evaluate(*workload_, JobSpec{50000}, cores);
  // A deadline everyone can meet: the pick must be the global cheapest.
  units::Seconds slowest;
  for (const auto& row : rows) {
    slowest = std::max(slowest, row.time_to_solution_s);
  }
  const auto within =
      Dashboard::recommend(rows, Objective::kDeadline, slowest * 2.0);
  const auto cheapest = Dashboard::recommend(rows, Objective::kMinCost);
  ASSERT_TRUE(within.has_value());
  EXPECT_DOUBLE_EQ(within->total_dollars.value(),
                   cheapest->total_dollars.value());
  // An impossible deadline yields no recommendation.
  EXPECT_FALSE(Dashboard::recommend(rows, Objective::kDeadline,
                                    units::Seconds(1e-9))
                   .has_value());
}

TEST_F(DashboardTest, RefinementScalesPredictions) {
  CampaignTracker tracker;
  tracker.record(Observation{"aorta", "CSP-2", 36, units::Mflups(125.0),
                             units::Mflups(100.0)});
  const std::vector<index_t> cores = {36};
  const auto raw = dashboard_->evaluate(*workload_, JobSpec{1000}, cores);
  const auto refined =
      dashboard_->evaluate(*workload_, JobSpec{1000}, cores, &tracker);
  ASSERT_EQ(raw.size(), refined.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    EXPECT_NEAR(refined[i].prediction.mflups.value(),
                raw[i].prediction.mflups.value() * 0.8, 1e-6);
    EXPECT_GT(refined[i].time_to_solution_s.value(),
              raw[i].time_to_solution_s.value());
  }
}

TEST_F(DashboardTest, GuardDerivesFromRow) {
  const std::vector<index_t> cores = {144};
  const auto rows = dashboard_->evaluate(*workload_, JobSpec{10000}, cores);
  const JobGuard guard = Dashboard::make_guard(rows.front(), 0.10);
  EXPECT_DOUBLE_EQ(guard.predicted_seconds.value(),
                   rows.front().time_to_solution_s.value());
  EXPECT_GT(guard.max_dollars().value(), 0.0);
  EXPECT_NEAR(guard.max_seconds().value(),
              rows.front().time_to_solution_s.value() * 1.1, 1e-9);
}

}  // namespace
}  // namespace hemo::core
