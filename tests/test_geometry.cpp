// Unit tests for the voxel grid, wall classification, and the three vessel
// generators, including the geometric properties the paper's experiments
// rely on (bulk:wall ratios, inlet/outlet presence, fill fractions).
#include <gtest/gtest.h>

#include "geometry/generators.hpp"
#include "geometry/stencil.hpp"
#include "geometry/voxel_grid.hpp"

namespace hemo::geometry {
namespace {

TEST(Stencil, OppositeNegatesOffsets) {
  for (index_t i = 0; i < kQ; ++i) {
    const Offset& a = kD3Q19[static_cast<std::size_t>(i)];
    const Offset& b = kD3Q19[static_cast<std::size_t>(opposite(i))];
    EXPECT_EQ(a.dx, -b.dx);
    EXPECT_EQ(a.dy, -b.dy);
    EXPECT_EQ(a.dz, -b.dz);
    EXPECT_EQ(opposite(opposite(i)), i);
  }
}

TEST(Stencil, DirectionsAreUniqueAndD3Q19) {
  for (index_t i = 0; i < kQ; ++i) {
    for (index_t j = i + 1; j < kQ; ++j) {
      const Offset& a = kD3Q19[static_cast<std::size_t>(i)];
      const Offset& b = kD3Q19[static_cast<std::size_t>(j)];
      EXPECT_FALSE(a.dx == b.dx && a.dy == b.dy && a.dz == b.dz);
    }
    const Offset& o = kD3Q19[static_cast<std::size_t>(i)];
    // D3Q19 excludes corner directions: |dx|+|dy|+|dz| <= 2.
    EXPECT_LE(std::abs(o.dx) + std::abs(o.dy) + std::abs(o.dz), 2);
  }
}

TEST(VoxelGrid, OutOfBoundsReadsSolid) {
  VoxelGrid g(4, 4, 4);
  EXPECT_EQ(g.at(-1, 0, 0), PointType::kSolid);
  EXPECT_EQ(g.at(0, 0, 4), PointType::kSolid);
  EXPECT_FALSE(g.is_fluid(100, 0, 0));
}

TEST(VoxelGrid, SetAndCount) {
  VoxelGrid g(3, 3, 3);
  g.set(1, 1, 1, PointType::kBulk);
  const TypeCounts c = g.count_types();
  EXPECT_EQ(c.bulk, 1);
  EXPECT_EQ(c.solid, 26);
  EXPECT_EQ(c.fluid(), 1);
}

TEST(VoxelGrid, ClassifyWallsSingleInterior) {
  // 5^3 grid fully fluid: only the center of a 3x3x3 fluid block is bulk.
  VoxelGrid g(3, 3, 3);
  for (index_t z = 0; z < 3; ++z) {
    for (index_t y = 0; y < 3; ++y) {
      for (index_t x = 0; x < 3; ++x) g.set(x, y, z, PointType::kBulk);
    }
  }
  g.classify_walls();
  EXPECT_EQ(g.at(1, 1, 1), PointType::kBulk);
  EXPECT_EQ(g.at(0, 1, 1), PointType::kWall);
  EXPECT_EQ(g.at(0, 0, 0), PointType::kWall);
  const TypeCounts c = g.count_types();
  EXPECT_EQ(c.bulk, 1);
  EXPECT_EQ(c.wall, 26);
}

TEST(VoxelGrid, ClassifyPreservesInletOutlet) {
  VoxelGrid g(3, 3, 3);
  for (index_t x = 0; x < 3; ++x) g.set(x, 1, 1, PointType::kBulk);
  g.set(0, 1, 1, PointType::kInlet);
  g.set(2, 1, 1, PointType::kOutlet);
  g.classify_walls();
  EXPECT_EQ(g.at(0, 1, 1), PointType::kInlet);
  EXPECT_EQ(g.at(2, 1, 1), PointType::kOutlet);
  EXPECT_EQ(g.at(1, 1, 1), PointType::kWall);  // has solid neighbors
}

TEST(CarveCapsule, CarvesSegmentInterior) {
  VoxelGrid g(20, 20, 20);
  carve_capsule(g, Point3{5.0, 10.0, 10.0}, Point3{15.0, 10.0, 10.0}, 3.0);
  EXPECT_TRUE(g.is_fluid(10, 10, 10));
  EXPECT_TRUE(g.is_fluid(10, 12, 10));   // within radius
  EXPECT_FALSE(g.is_fluid(10, 15, 10));  // outside radius
  EXPECT_FALSE(g.is_fluid(1, 10, 10));   // beyond the cap
}

TEST(Cylinder, HasInletOutletAndExpectedCounts) {
  const Geometry geo = make_cylinder({.radius = 6, .length = 40});
  const TypeCounts c = geo.grid.count_types();
  EXPECT_GT(c.inlet, 0);
  EXPECT_GT(c.outlet, 0);
  EXPECT_GT(c.bulk, 0);
  EXPECT_GT(c.wall, 0);
  EXPECT_EQ(geo.inlets.size(), 1u);
  // Fluid volume close to pi r^2 L.
  const real_t expected = 3.14159 * 6.0 * 6.0 * 40.0;
  EXPECT_NEAR(static_cast<real_t>(c.fluid()), expected, expected * 0.25);
}

TEST(Cylinder, InletDiscSitsOnZZero) {
  const Geometry geo = make_cylinder({.radius = 5, .length = 24});
  index_t inlet_on_face = 0;
  for (index_t y = 0; y < geo.grid.ny(); ++y) {
    for (index_t x = 0; x < geo.grid.nx(); ++x) {
      if (geo.grid.at(x, y, 0) == PointType::kInlet) ++inlet_on_face;
      // No inlet anywhere else.
      for (index_t z = 1; z < geo.grid.nz(); ++z) {
        EXPECT_NE(geo.grid.at(x, y, z), PointType::kInlet);
      }
    }
  }
  EXPECT_GT(inlet_on_face, 50);  // roughly pi * 5^2
}

TEST(Aorta, HasOneInletAndMultipleOutletRegions) {
  const Geometry geo = make_aorta({});
  const TypeCounts c = geo.grid.count_types();
  EXPECT_GT(c.inlet, 0);
  EXPECT_GT(c.outlet, c.inlet);  // descending root + three branches
  EXPECT_GT(c.fluid(), 10000);
  EXPECT_EQ(geo.inlets.size(), 1u);
}

TEST(Cerebral, DeterministicForFixedSeed) {
  const Geometry a = make_cerebral({.depth = 3, .seed = 7});
  const Geometry b = make_cerebral({.depth = 3, .seed = 7});
  EXPECT_EQ(a.grid.count_types().fluid(), b.grid.count_types().fluid());
  const Geometry c = make_cerebral({.depth = 3, .seed = 8});
  EXPECT_NE(a.grid.count_types().fluid(), c.grid.count_types().fluid());
}

TEST(GeometryStats, CerebralIsWallRichCylinderIsBulkRich) {
  // The property Fig. 3 depends on: the cylinder packs bulk points
  // efficiently; the thin-vesseled cerebral tree is dominated by wall
  // points (paper Section III-D).
  const GeometryStats cyl = compute_stats(make_cylinder({}));
  const GeometryStats cer =
      compute_stats(make_cerebral({.depth = 4}));
  EXPECT_GT(cyl.bulk_to_wall_ratio, cer.bulk_to_wall_ratio * 1.5);
  // Cylinder fills its bounding box densely; the tree is sparse.
  EXPECT_GT(cyl.fill_fraction, cer.fill_fraction * 3.0);
}

TEST(GeometryStats, AortaBetweenCylinderAndCerebral) {
  const real_t cyl = compute_stats(make_cylinder({})).bulk_to_wall_ratio;
  const real_t aorta = compute_stats(make_aorta({})).bulk_to_wall_ratio;
  const real_t cer =
      compute_stats(make_cerebral({.depth = 4})).bulk_to_wall_ratio;
  EXPECT_GT(cyl, aorta);
  EXPECT_GT(aorta, cer);
}

TEST(Generators, RejectDegenerateParameters) {
  EXPECT_THROW(make_cylinder({.radius = 1, .length = 2}), PreconditionError);
  EXPECT_THROW(make_cerebral({.depth = 0}), PreconditionError);
  AortaParams bad;
  bad.vessel_radius = 50.0;
  bad.arch_radius = 10.0;
  EXPECT_THROW(make_aorta(bad), PreconditionError);
}

}  // namespace
}  // namespace hemo::geometry
