// Unit tests for the lbm-proxy-app equivalent.
#include <gtest/gtest.h>

#include "proxy/proxy_app.hpp"

namespace hemo::proxy {
namespace {

TEST(ProxyVariants, Fig4SetCoversLayoutsAndPatterns) {
  const auto v = fig4_variants();
  ASSERT_EQ(v.size(), 4u);
  index_t aa = 0, soa = 0;
  for (const auto& k : v) {
    if (k.propagation == lbm::Propagation::kAA) ++aa;
    if (k.layout == lbm::Layout::kSoA) ++soa;
    EXPECT_EQ(k.unroll, lbm::Unroll::kYes);
  }
  EXPECT_EQ(aa, 2);
  EXPECT_EQ(soa, 2);
}

TEST(ProxyVariants, Fig8SetIsAllSoAWithUnrollSweep) {
  const auto v = fig8_variants();
  ASSERT_EQ(v.size(), 4u);
  index_t unrolled = 0;
  for (const auto& k : v) {
    EXPECT_EQ(k.layout, lbm::Layout::kSoA);
    if (k.unroll == lbm::Unroll::kYes) ++unrolled;
  }
  EXPECT_EQ(unrolled, 2);
}

TEST(ProxyApp, LocalRunProducesThroughput) {
  ProxyParams params;
  params.radius = 5;
  params.length = 24;
  ProxyApp app(params, lbm::KernelConfig{});
  const LocalRun run = app.run_local(20);
  EXPECT_EQ(run.steps, 20);
  EXPECT_GT(run.seconds, 0.0);
  EXPECT_GT(run.mflups, 0.0);
}

TEST(ProxyApp, AaStepCountRoundedUpToEven) {
  ProxyParams params;
  params.radius = 4;
  params.length = 16;
  lbm::KernelConfig aa;
  aa.propagation = lbm::Propagation::kAA;
  ProxyApp app(params, aa);
  const LocalRun run = app.run_local(7);
  EXPECT_EQ(run.steps, 8);
}

TEST(ProxyApp, MeasuredAaBeatsAbOnVirtualCluster) {
  // Fig. 4: the AA pattern's reduced memory traffic lifts throughput.
  ProxyParams params;
  lbm::KernelConfig aa, ab;
  aa.propagation = lbm::Propagation::kAA;
  ab.propagation = lbm::Propagation::kAB;
  ProxyApp app_aa(params, aa), app_ab(params, ab);
  const auto& csp2 = cluster::instance_by_abbrev("CSP-2");
  EXPECT_GT(app_aa.measure(csp2, 36, 100).mflups,
            app_ab.measure(csp2, 36, 100).mflups);
}

TEST(ProxyApp, UnrolledBeatsLoopedOnVirtualCluster) {
  ProxyParams params;
  lbm::KernelConfig unrolled, looped;
  looped.unroll = lbm::Unroll::kNo;
  ProxyApp a(params, unrolled), b(params, looped);
  const auto& csp2 = cluster::instance_by_abbrev("CSP-2");
  EXPECT_GT(a.measure(csp2, 36, 100).mflups,
            b.measure(csp2, 36, 100).mflups);
}

TEST(ProxyApp, AaAdvantageVanishesWithoutUnrolling) {
  // The paper's Fig. 8 observation: AA beats AB only for unrolled kernels.
  ProxyParams params;
  lbm::KernelConfig aa_l, ab_l;
  aa_l.propagation = lbm::Propagation::kAA;
  aa_l.unroll = lbm::Unroll::kNo;
  aa_l.layout = lbm::Layout::kSoA;
  ab_l.propagation = lbm::Propagation::kAB;
  ab_l.unroll = lbm::Unroll::kNo;
  ab_l.layout = lbm::Layout::kSoA;
  ProxyApp app_aa(params, aa_l), app_ab(params, ab_l);
  const auto& csp2 = cluster::instance_by_abbrev("CSP-2");
  const real_t maa = app_aa.measure(csp2, 36, 100).mflups.value();
  const real_t mab = app_ab.measure(csp2, 36, 100).mflups.value();
  EXPECT_LT(maa, mab * 1.05);  // no meaningful AA advantage when looped
}

}  // namespace
}  // namespace hemo::proxy
