// Tier-1 tests for the nemesis fault harness (src/nemesis/): protocol
// history determinism and worker-count invariance (W1), the invariant
// checker on clean runs, the mutation/seeded-bug self-test (every
// invariant of specs/executor_protocol.md has a mutant the checker
// kills), and the CI failure-artifact writer. The longer seeded storm
// sweeps run in test_nemesis_slow.cpp (ctest label "slow").
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "check/mutation.hpp"
#include "nemesis/harness.hpp"
#include "util/rng.hpp"

namespace hemo::nemesis {
namespace {

NemesisSchedule storm_schedule(const std::string& storm,
                               std::uint64_t seed) {
  Xoshiro256 rng(seed);
  return gen_schedule(storm, rng);
}

// ------------------------------------------------------------ determinism

TEST(NemesisHistory, ByteIdenticalAcrossWorkerCounts) {
  const NemesisSchedule schedule = storm_schedule("preemption_storm", 42);
  const RunArtifacts base = run_schedule(schedule, 1);
  ASSERT_FALSE(base.history.events.empty());
  for (const index_t workers : {2, 8}) {
    const RunArtifacts other = run_schedule(schedule, workers);
    EXPECT_EQ(base.history.canonical(), other.history.canonical())
        << "history differs at " << workers << " workers";
    EXPECT_EQ(base.csv, other.csv)
        << "report differs at " << workers << " workers";
  }
}

TEST(NemesisHistory, DeterministicReplay) {
  const NemesisSchedule schedule = storm_schedule("corruption_burst", 7);
  const RunArtifacts first = run_schedule(schedule, 2);
  const RunArtifacts again = run_schedule(schedule, 2);
  EXPECT_EQ(first.history.canonical(), again.history.canonical());
  EXPECT_EQ(first.csv, again.csv);
}

TEST(NemesisHistory, CanonicalRenderingIsOneLinePerEvent) {
  const NemesisSchedule schedule = storm_schedule("calm", 3);
  const RunArtifacts run = run_schedule(schedule, 1);
  const std::string canonical = run.history.canonical();
  std::size_t lines = 0;
  for (const char c : canonical) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, run.history.events.size());
  EXPECT_NE(canonical.find("submitted job=1"), std::string::npos);
  EXPECT_NE(canonical.find("placed"), std::string::npos);
}

// ---------------------------------------------------------------- checker

TEST(NemesisChecker, CleanRunsPassEveryInvariant) {
  for (const std::string& storm : storm_names()) {
    const NemesisSchedule schedule = storm_schedule(storm, 11);
    const RunArtifacts run = run_schedule(schedule, 2);
    CheckLimits limits;
    limits.max_attempts = schedule.max_attempts;
    const CheckResult result =
        check_history(run.history, schedule.jobs, limits, &run.report);
    EXPECT_TRUE(result.passed()) << storm << ":\n" << result.summary();
    EXPECT_EQ(result.jobs_checked,
              static_cast<index_t>(schedule.jobs.size()));
    EXPECT_GT(result.events_checked, 0);
  }
}

TEST(NemesisChecker, FullVerdictPassesOnEveryStorm) {
  for (const std::string& storm : storm_names()) {
    const NemesisVerdict verdict =
        run_nemesis(storm_schedule(storm, 1234));
    EXPECT_TRUE(verdict.passed)
        << storm << ": " << verdict.failure << "\n"
        << verdict.check.summary();
  }
}

// The teeth proof: every protocol mutation and every seeded live-engine
// bug is convicted on exactly the invariant the catalog states.
TEST(NemesisSelfTest, EveryMutantAndSeededBugIsDetected) {
  const SelfTestReport report = run_protocol_self_test(42);
  EXPECT_TRUE(report.baseline_passed);
  EXPECT_TRUE(report.all_detected()) << report.summary();
  // One outcome per catalog mutation plus the four seeded engine bugs.
  EXPECT_EQ(report.outcomes.size(),
            check::protocol_mutations().size() + 4);
  for (const SelfTestOutcome& outcome : report.outcomes) {
    EXPECT_TRUE(outcome.detected)
        << outcome.name << " expected " << outcome.invariant << ": "
        << outcome.detail;
  }
}

TEST(NemesisSelfTest, SummaryIsDeterministic) {
  const SelfTestReport a = run_protocol_self_test(42);
  const SelfTestReport b = run_protocol_self_test(42);
  EXPECT_EQ(a.summary(), b.summary());
}

// ------------------------------------------------------------ crash fault

TEST(NemesisFaults, CrashStormCrashesAndStillSettlesCleanly) {
  // A crash-heavy schedule must actually exercise the new fault path...
  const NemesisSchedule schedule = storm_schedule("crash_storm", 5);
  ASSERT_GT(schedule.faults.worker_crash_probability, 0.0);
  const RunArtifacts run = run_schedule(schedule, 2);
  index_t crashes = 0;
  for (const auto& e : run.history.events) {
    if (e.kind == sched::ProtocolEventKind::kWorkerCrash) ++crashes;
  }
  EXPECT_GT(crashes, 0) << run.history.canonical();
  // ...and the protocol must hold under it.
  CheckLimits limits;
  limits.max_attempts = schedule.max_attempts;
  const CheckResult result =
      check_history(run.history, schedule.jobs, limits, &run.report);
  EXPECT_TRUE(result.passed()) << result.summary();
}

TEST(NemesisFaults, CalmScheduleRecordsNoInjectedFaultEvents) {
  // Natural spot preemptions may still occur in a calm schedule; crashes
  // and checkpoint corruption exist only as injected faults.
  const NemesisSchedule schedule = storm_schedule("calm", 9);
  const RunArtifacts run = run_schedule(schedule, 1);
  for (const auto& e : run.history.events) {
    EXPECT_NE(e.kind, sched::ProtocolEventKind::kWorkerCrash);
    EXPECT_NE(e.kind, sched::ProtocolEventKind::kCorruptRestore);
  }
}

// --------------------------------------------------------------- artifacts

TEST(NemesisArtifacts, WritesScheduleHistoryReportAndVerdict) {
  NemesisFailure failure;
  failure.schedule = storm_schedule("mixed_storm", 21);
  failure.verdict = run_nemesis(failure.schedule);
  failure.verdict.failure = "synthetic: artifact writer test";

  const std::string dir =
      (std::filesystem::temp_directory_path() / "hemo_nemesis_artifacts")
          .string();
  std::filesystem::remove_all(dir);
  const std::vector<std::string> paths =
      write_failure_artifacts(failure, dir);
  ASSERT_EQ(paths.size(), 4u);
  for (const std::string& path : paths) {
    EXPECT_TRUE(std::filesystem::exists(path)) << path;
  }
  std::ifstream schedule_file(paths[0]);
  std::stringstream text;
  text << schedule_file.rdbuf();
  EXPECT_NE(text.str().find("mixed_storm"), std::string::npos);
  EXPECT_NE(text.str().find("synthetic: artifact writer test"),
            std::string::npos);
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------------------- generators

TEST(NemesisSchedules, ShrinkCandidatesAreStrictlySmaller) {
  const NemesisSchedule schedule = storm_schedule("mixed_storm", 17);
  for (const NemesisSchedule& candidate : shrink_schedule(schedule)) {
    index_t steps = 0, base_steps = 0;
    for (const auto& j : candidate.jobs) steps += j.timesteps;
    for (const auto& j : schedule.jobs) base_steps += j.timesteps;
    const bool fewer_jobs = candidate.jobs.size() < schedule.jobs.size();
    const bool fewer_steps = steps < base_steps;
    const bool weaker_faults =
        candidate.faults.slowdown_factor <
            schedule.faults.slowdown_factor ||
        candidate.faults.extra_preemption_probability <
            schedule.faults.extra_preemption_probability ||
        candidate.faults.checkpoint_corruption_rate <
            schedule.faults.checkpoint_corruption_rate ||
        candidate.faults.worker_crash_probability <
            schedule.faults.worker_crash_probability;
    EXPECT_TRUE(fewer_jobs || fewer_steps || weaker_faults)
        << describe_schedule(candidate);
  }
}

TEST(NemesisSchedules, UnknownStormIsRejected) {
  Xoshiro256 rng(1);
  EXPECT_THROW((void)gen_schedule("hurricane", rng), PreconditionError);
}

}  // namespace
}  // namespace hemo::nemesis
